package relstore

import "bytes"

// btree is a copy-on-write B+ tree mapping order-preserving encoded keys
// to row IDs. Keys are unique: non-unique indexes append the row ID to
// the encoded column key. Deletion rebalances by borrowing from or
// merging with siblings, keeping every non-root node at least half full.
//
// Mutation is by path copying: every node carries the epoch of the
// transaction that allocated it, and a mutation first replaces each node
// on the root-to-leaf path whose epoch differs from the tree's with a
// private copy. Nodes from older committed versions are therefore never
// modified, so readers holding a pinned snapshot can walk the tree with
// no synchronization while writers build the next version. A whole-tree
// clone for the next epoch is O(1): share the root, bump the epoch.
//
// There is deliberately no leaf chain — a next pointer would make every
// leaf split mutate its left sibling, destroying structural sharing.
// Range scans descend with an in-order walk instead.
type btree struct {
	root  *bnode
	size  int
	epoch uint64
}

// maxKeys is the fan-out bound: nodes split when they exceed maxKeys
// keys; minKeys is the occupancy floor deletion maintains for non-root
// nodes.
const (
	maxKeys = 64
	minKeys = maxKeys / 2
)

type bnode struct {
	epoch    uint64
	leaf     bool
	keys     [][]byte
	vals     []int64  // leaf only, parallel to keys
	children []*bnode // internal only, len(children) == len(keys)+1
}

func newBtree() *btree {
	return &btree{root: &bnode{leaf: true}}
}

// clone returns a tree sharing this tree's nodes, tagged with the given
// epoch so its first mutations path-copy instead of modifying shared
// state.
func (t *btree) clone(epoch uint64) *btree {
	return &btree{root: t.root, size: t.size, epoch: epoch}
}

// mut returns n if it already belongs to this tree's epoch, otherwise a
// private copy tagged with it. Aborted transactions simply drop their
// copies: nothing reachable from a published root ever carries an
// unpublished epoch, so epoch reuse after an abort is safe.
func (t *btree) mut(n *bnode) *bnode {
	if n.epoch == t.epoch {
		return n
	}
	c := &bnode{epoch: t.epoch, leaf: n.leaf}
	c.keys = append(make([][]byte, 0, len(n.keys)+1), n.keys...)
	if n.leaf {
		c.vals = append(make([]int64, 0, len(n.vals)+1), n.vals...)
	} else {
		c.children = append(make([]*bnode, 0, len(n.children)+1), n.children...)
	}
	return c
}

// Len returns the number of entries.
func (t *btree) Len() int { return t.size }

// searchKeys returns the index of the first key in keys >= key.
func searchKeys(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key. Safe for concurrent use with
// writers building a later epoch.
func (t *btree) Get(key []byte) (int64, bool) {
	n := t.root
	for !n.leaf {
		i := searchKeys(n.keys, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++ // separator equal to key: key lives in the right subtree
		}
		n = n.children[i]
	}
	i := searchKeys(n.keys, key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return n.vals[i], true
	}
	return 0, false
}

// Insert stores val under key, replacing any existing entry. Must only
// be called on a tree private to the writing transaction.
func (t *btree) Insert(key []byte, val int64) {
	t.root = t.mut(t.root)
	promoted, right, replaced := t.insert(t.root, key, val)
	if !replaced {
		t.size++
	}
	if right != nil {
		t.root = &bnode{
			epoch:    t.epoch,
			keys:     [][]byte{promoted},
			children: []*bnode{t.root, right},
		}
	}
}

// insert adds key to the subtree at n, which is already a private copy.
// When n splits it returns the promoted separator and the new right
// sibling.
func (t *btree) insert(n *bnode, key []byte, val int64) (promoted []byte, right *bnode, replaced bool) {
	if n.leaf {
		i := searchKeys(n.keys, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = val
			return nil, nil, true
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
	} else {
		i := searchKeys(n.keys, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			i++
		}
		child := t.mut(n.children[i])
		n.children[i] = child
		p, r, rep := t.insert(child, key, val)
		replaced = rep
		if r != nil {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = p
			n.children = append(n.children, nil)
			copy(n.children[i+2:], n.children[i+1:])
			n.children[i+1] = r
		}
	}
	if len(n.keys) <= maxKeys {
		return nil, nil, replaced
	}
	return t.split(n, replaced)
}

func (t *btree) split(n *bnode, replaced bool) ([]byte, *bnode, bool) {
	mid := len(n.keys) / 2
	if n.leaf {
		r := &bnode{epoch: t.epoch, leaf: true}
		r.keys = append(r.keys, n.keys[mid:]...)
		r.vals = append(r.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		// For leaves the separator is the first key of the right node and
		// stays in the leaf (B+ tree style).
		return r.keys[0], r, replaced
	}
	r := &bnode{epoch: t.epoch}
	r.keys = append(r.keys, n.keys[mid+1:]...)
	r.children = append(r.children, n.children[mid+1:]...)
	promoted := n.keys[mid]
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return promoted, r, replaced
}

// Delete removes key, reporting whether it was present. Underfull nodes
// rebalance on the way back up; a root left with a single child is
// collapsed. Must only be called on a tree private to the writing
// transaction.
func (t *btree) Delete(key []byte) bool {
	t.root = t.mut(t.root)
	deleted := t.del(t.root, key)
	if !t.root.leaf && len(t.root.keys) == 0 {
		t.root = t.root.children[0]
	}
	if deleted {
		t.size--
	}
	return deleted
}

// del removes key from the subtree at n, which is already a private
// copy.
func (t *btree) del(n *bnode, key []byte) bool {
	if n.leaf {
		i := searchKeys(n.keys, key)
		if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	i := searchKeys(n.keys, key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		i++
	}
	child := t.mut(n.children[i])
	n.children[i] = child
	deleted := t.del(child, key)
	if len(child.keys) < minKeys {
		t.rebalance(n, i)
	}
	return deleted
}

// rebalance restores the occupancy floor of parent.children[i] by
// borrowing from a sibling with spare keys, or merging with one. The
// parent and child are private copies already; siblings are copied
// before they are touched.
func (t *btree) rebalance(parent *bnode, i int) {
	c := parent.children[i]
	if i > 0 && len(parent.children[i-1].keys) > minKeys {
		left := t.mut(parent.children[i-1])
		parent.children[i-1] = left
		if c.leaf {
			last := len(left.keys) - 1
			c.keys = append([][]byte{left.keys[last]}, c.keys...)
			c.vals = append([]int64{left.vals[last]}, c.vals...)
			left.keys = left.keys[:last]
			left.vals = left.vals[:last]
			parent.keys[i-1] = c.keys[0]
		} else {
			last := len(left.keys) - 1
			c.keys = append([][]byte{parent.keys[i-1]}, c.keys...)
			c.children = append([]*bnode{left.children[last+1]}, c.children...)
			parent.keys[i-1] = left.keys[last]
			left.keys = left.keys[:last]
			left.children = left.children[:last+1]
		}
		return
	}
	if i < len(parent.children)-1 && len(parent.children[i+1].keys) > minKeys {
		right := t.mut(parent.children[i+1])
		parent.children[i+1] = right
		if c.leaf {
			c.keys = append(c.keys, right.keys[0])
			c.vals = append(c.vals, right.vals[0])
			right.keys = right.keys[1:]
			right.vals = right.vals[1:]
			parent.keys[i] = right.keys[0]
		} else {
			c.keys = append(c.keys, parent.keys[i])
			c.children = append(c.children, right.children[0])
			parent.keys[i] = right.keys[0]
			right.keys = right.keys[1:]
			right.children = right.children[1:]
		}
		return
	}
	// No sibling can spare a key: merge with one.
	if i > 0 {
		t.merge(parent, i-1)
	} else {
		t.merge(parent, i)
	}
}

// merge folds parent.children[i+1] into parent.children[i]. The right
// node is discarded, so only the left needs a private copy.
func (t *btree) merge(parent *bnode, i int) {
	l := t.mut(parent.children[i])
	parent.children[i] = l
	r := parent.children[i+1]
	if l.leaf {
		l.keys = append(l.keys, r.keys...)
		l.vals = append(l.vals, r.vals...)
	} else {
		l.keys = append(l.keys, parent.keys[i])
		l.keys = append(l.keys, r.keys...)
		l.children = append(l.children, r.children...)
	}
	parent.keys = append(parent.keys[:i], parent.keys[i+1:]...)
	parent.children = append(parent.children[:i+1], parent.children[i+2:]...)
}

// Ascend visits entries with lo <= key < hi in key order. A nil lo starts
// at the smallest key; a nil hi runs to the end. fn returning false stops
// the scan. The walk is a pure descent over immutable nodes, so it is
// safe against concurrent writers building a later epoch.
func (t *btree) Ascend(lo, hi []byte, fn func(key []byte, val int64) bool) {
	ascend(t.root, lo, hi, fn)
}

// ascend walks the subtree at n in order, reporting whether the scan
// should continue. lo only constrains the first subtree descended into;
// every later subtree is bounded below by a separator >= lo already.
func ascend(n *bnode, lo, hi []byte, fn func(key []byte, val int64) bool) bool {
	if n.leaf {
		i := 0
		if lo != nil {
			i = searchKeys(n.keys, lo)
		}
		for ; i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				return false
			}
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		return true
	}
	i := 0
	if lo != nil {
		i = searchKeys(n.keys, lo)
		if i < len(n.keys) && bytes.Equal(n.keys[i], lo) {
			i++
		}
	}
	for ; i < len(n.children); i++ {
		// Keys in children[i] are >= the separator keys[i-1]; once that
		// separator reaches hi the remaining subtrees are out of range.
		if i > 0 && hi != nil && bytes.Compare(n.keys[i-1], hi) >= 0 {
			return false
		}
		if !ascend(n.children[i], lo, hi, fn) {
			return false
		}
		lo = nil
	}
	return true
}

// AscendPrefix visits all entries whose key begins with prefix.
func (t *btree) AscendPrefix(prefix []byte, fn func(key []byte, val int64) bool) {
	if len(prefix) == 0 {
		t.Ascend(nil, nil, fn)
		return
	}
	t.Ascend(prefix, prefixEnd(prefix), fn)
}

// prefixEnd returns the smallest key greater than every key with the given
// prefix, or nil when the prefix is all 0xFF.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// checkInvariants validates ordering, uniform leaf depth, and the
// occupancy floor of non-root nodes; used by tests.
func (t *btree) checkInvariants() error {
	var prev []byte
	first := true
	depth := -1
	var walk func(n *bnode, d int) error
	var errf error
	walk = func(n *bnode, d int) error {
		if d > 0 && len(n.keys) < minKeys {
			return errInvariant("non-root node below minimum occupancy")
		}
		if n.leaf {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return errInvariant("leaf depth not uniform")
			}
			for _, k := range n.keys {
				if !first && bytes.Compare(prev, k) >= 0 {
					return errInvariant("keys out of order")
				}
				prev, first = k, false
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return errInvariant("child count mismatch")
		}
		for i, c := range n.children {
			if err := walk(c, d+1); err != nil {
				return err
			}
			if i < len(n.keys) {
				// keys in left subtree < separator <= keys in right subtree
				if !first && bytes.Compare(prev, n.keys[i]) > 0 {
					return errInvariant("separator below left subtree max")
				}
			}
		}
		return nil
	}
	errf = walk(t.root, 0)
	return errf
}

type errInvariant string

func (e errInvariant) Error() string { return "btree: " + string(e) }

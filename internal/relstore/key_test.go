package relstore

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// keyOrderMatches checks that the encoded-key order of a and b matches
// Compare(a, b).
func keyOrderMatches(a, b Value) bool {
	ka, kb := EncodeKey(a), EncodeKey(b)
	return sign(bytes.Compare(ka, kb)) == sign(Compare(a, b))
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestKeyOrderSingleValues(t *testing.T) {
	vals := []Value{
		Null(), Bool(false), Bool(true),
		Float(math.Inf(-1)), Int(math.MinInt64 + 2), Int(-1000000), Float(-3.5),
		Int(-1), Float(-0.0), Int(0), Float(0.0), Float(1e-10), Int(1),
		Float(1.5), Int(2), Int(1000000), Float(1e300), Float(math.Inf(1)),
		Str(""), Str("\x00"), Str("\x00a"), Str("a"), Str("a\x00"), Str("ab"), Str("b"),
		Bytes(nil), Bytes([]byte{0}), Bytes([]byte{0, 0}), Bytes([]byte{1}),
	}
	for i, a := range vals {
		for j, b := range vals {
			if !keyOrderMatches(a, b) {
				t.Errorf("key order mismatch between vals[%d]=%v and vals[%d]=%v", i, a, j, b)
			}
		}
	}
}

func TestKeyOrderIntFloatEquality(t *testing.T) {
	// An int and the numerically equal float must encode identically so
	// hash and tree lookups agree with Compare.
	pairs := []int64{0, 1, -1, 42, -99, 1 << 40, -(1 << 40)}
	for _, i := range pairs {
		ki, kf := EncodeKey(Int(i)), EncodeKey(Float(float64(i)))
		if !bytes.Equal(ki, kf) {
			t.Errorf("Int(%d) and Float(%d) encode differently", i, i)
		}
	}
}

func TestKeyOrderProperty(t *testing.T) {
	f := func(a, b int64, fa, fb float64, sa, sb string) bool {
		// Stay clear of the 2^63 int/float boundary, where the codec's
		// int/float equality deliberately diverges from Compare (documented
		// in key.go).
		a, b = a%(1<<62), b%(1<<62)
		vals := []Value{Int(a), Int(b), Float(fa), Float(fb), Str(sa), Str(sb), Null(), Bool(a%2 == 0)}
		for _, x := range vals {
			for _, y := range vals {
				if !keyOrderMatches(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompositeKeyPrefixOrder(t *testing.T) {
	// A composite key must order by the first differing component, and a
	// strict prefix must sort before any extension.
	a := EncodeKey(Str("abc"), Int(1))
	b := EncodeKey(Str("abc"), Int(2))
	c := EncodeKey(Str("abd"), Int(0))
	if !(bytes.Compare(a, b) < 0 && bytes.Compare(b, c) < 0) {
		t.Error("composite keys out of order")
	}
	// The string terminator must prevent "ab" + "c..." from colliding with
	// "abc" + "...".
	d := EncodeKey(Str("ab"), Str("c"))
	e := EncodeKey(Str("abc"), Str(""))
	if bytes.Equal(d, e) {
		t.Error("composite keys with shifted boundaries must differ")
	}
}

func TestCompositeKeyOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randVal := func() Value {
		switch rng.Intn(5) {
		case 0:
			return Int(rng.Int63n(1000) - 500)
		case 1:
			return Float(rng.NormFloat64())
		case 2:
			return Str(randString(rng, 6))
		case 3:
			return Null()
		default:
			return Bool(rng.Intn(2) == 0)
		}
	}
	cmpTuple := func(a, b []Value) int {
		for i := range a {
			if c := Compare(a[i], b[i]); c != 0 {
				return c
			}
		}
		return 0
	}
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(3)
		ta := make([]Value, n)
		tb := make([]Value, n)
		for i := 0; i < n; i++ {
			ta[i], tb[i] = randVal(), randVal()
		}
		if sign(bytes.Compare(EncodeKey(ta...), EncodeKey(tb...))) != sign(cmpTuple(ta, tb)) {
			t.Fatalf("composite order mismatch: %v vs %v", ta, tb)
		}
	}
}

func randString(rng *rand.Rand, maxLen int) string {
	n := rng.Intn(maxLen)
	b := make([]byte, n)
	for i := range b {
		// Include NUL bytes to exercise the escaping.
		b[i] = byte(rng.Intn(4))
		if rng.Intn(2) == 0 {
			b[i] = byte('a' + rng.Intn(26))
		}
	}
	return string(b)
}

func TestPrefixEnd(t *testing.T) {
	if got := prefixEnd([]byte{1, 2, 3}); !bytes.Equal(got, []byte{1, 2, 4}) {
		t.Errorf("prefixEnd(1,2,3) = %v", got)
	}
	if got := prefixEnd([]byte{1, 0xFF}); !bytes.Equal(got, []byte{2}) {
		t.Errorf("prefixEnd(1,FF) = %v", got)
	}
	if got := prefixEnd([]byte{0xFF, 0xFF}); got != nil {
		t.Errorf("prefixEnd(FF,FF) = %v, want nil", got)
	}
}

func TestKeyOfColumns(t *testing.T) {
	r := Row{Int(1), Str("x"), Float(2.5)}
	got := KeyOfColumns(r, []int{2, 0})
	want := EncodeKey(Float(2.5), Int(1))
	if !bytes.Equal(got, want) {
		t.Error("KeyOfColumns should project in the given order")
	}
}

package relstore

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersWriters drives the read paths the catalog's
// parallel query pipeline relies on — index lookups, snapshot scans, and
// operator trees over them — against racing writers, under the race
// detector. Iterators are single-use and per-goroutine by contract; what
// this test pins down is that the shared table state those iterators
// draw from (row slots, hash and B-tree indexes, the free list) is safe
// for any number of concurrent readers alongside a mutating writer.
func TestConcurrentReadersWriters(t *testing.T) {
	s, err := NewSchema("events",
		Column{Name: "k", Type: KInt, NotNull: true},
		Column{Name: "s", Type: KString},
		Column{Name: "n", Type: KFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(s)
	if _, err := tab.CreateIndex("by_k", HashIndex, false, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateIndex("by_sn", BTreeIndex, false, "s", "n"); err != nil {
		t.Fatal(err)
	}
	labels := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < 256; i++ {
		if _, err := tab.Insert(Row{Int(int64(i % 16)), Str(labels[i%len(labels)]), Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}

	const (
		writers   = 2
		readers   = 4
		writerOps = 400
	)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writerOps; i++ {
				switch i % 3 {
				case 0:
					if _, err := tab.Insert(Row{Int(int64(w*100 + i%16)), Str(labels[i%len(labels)]), Float(float64(i))}); err != nil {
						t.Error(err)
						return
					}
				case 1:
					ids, err := tab.LookupEqual("by_k", Int(int64(i%16)))
					if err != nil {
						t.Error(err)
						return
					}
					if len(ids) > 0 {
						if r := tab.Get(ids[0]); r != nil {
							nr := CloneRow(r)
							nr[2] = Float(float64(i) + 0.5)
							// The row may have been deleted by the other
							// writer between Get and Update; that error is
							// expected and not a failure.
							_ = tab.Update(ids[0], nr)
						}
					}
				case 2:
					ids, err := tab.LookupEqual("by_k", Int(int64((w*100+i)%16)))
					if err != nil {
						t.Error(err)
						return
					}
					if len(ids) > 1 {
						tab.Delete(ids[len(ids)-1])
					}
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				// Index probes.
				ids, err := tab.LookupEqual("by_k", Int(int64(i%16)))
				if err != nil {
					t.Error(err)
					return
				}
				for _, row := range Collect(ScanRowIDs(tab, ids)) {
					if len(row) != 3 || row[0].IsNull() {
						t.Errorf("reader %d: malformed row %v", r, row)
						return
					}
				}
				// Range over the composite B-tree.
				lo := RangeBound{Vals: []Value{Str("beta")}, Inclusive: true, Set: true}
				hi := RangeBound{Vals: []Value{Str("gamma")}, Inclusive: true, Set: true}
				if _, err := tab.LookupRange("by_sn", lo, hi); err != nil {
					t.Error(err)
					return
				}
				// Snapshot scan feeding an operator tree, the way the
				// catalog's response builder composes them.
				it := Sort(
					Project(Filter(ScanTable(tab), func(row Row) bool { return !row[2].IsNull() }),
						[]int{0, 1}, []string{"k", "s"}),
					SortSpec{Col: 0},
				)
				var prev int64 = -1 << 62
				for {
					row, ok := it.Next()
					if !ok {
						break
					}
					if row[0].I < prev {
						t.Errorf("reader %d: sort order violated", r)
						return
					}
					prev = row[0].I
				}
				// Aggregation over a join of two independent scans.
				counts := GroupBy(
					HashJoin(ScanTable(tab), ScanTable(tab), []int{0}, []int{0}, SemiJoin),
					[]int{0}, []AggSpec{{Func: AggCount, Col: 0, Name: "n"}},
				)
				for {
					row, ok := counts.Next()
					if !ok {
						break
					}
					if row[1].I < 1 {
						t.Errorf("reader %d: impossible group count %v", r, row)
						return
					}
				}
			}
		}(r)
	}
	rg.Wait()
}

// TestDatabaseConcurrentTempTables checks the documented discipline for
// scratch tables under concurrency: per-goroutine names plus DropTable,
// with churn in one goroutine never disturbing readers of shared tables.
func TestDatabaseConcurrentTempTables(t *testing.T) {
	db := NewDatabase()
	base, err := db.CreateTable("base", Column{Name: "v", Type: KInt, NotNull: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := base.Insert(Row{Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("scratch_%d", w)
			for i := 0; i < 100; i++ {
				tmp, err := db.CreateTempTable(name, Column{Name: "v", Type: KInt, NotNull: true})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := tmp.Insert(Row{Int(int64(w*1000 + i))}); err != nil {
					t.Error(err)
					return
				}
				if got := len(Collect(ScanTable(base))); got != 64 {
					t.Errorf("worker %d: base scan saw %d rows, want 64", w, got)
					return
				}
				if err := db.DropTable(name); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

package relstore

import (
	"fmt"
	"testing"
)

func rowsOf(vals ...[]any) []Row {
	out := make([]Row, len(vals))
	for i, rv := range vals {
		r := make(Row, len(rv))
		for j, v := range rv {
			switch x := v.(type) {
			case int:
				r[j] = Int(int64(x))
			case int64:
				r[j] = Int(x)
			case float64:
				r[j] = Float(x)
			case string:
				r[j] = Str(x)
			case nil:
				r[j] = Null()
			case bool:
				r[j] = Bool(x)
			default:
				panic(fmt.Sprintf("rowsOf: %T", v))
			}
		}
		out[i] = r
	}
	return out
}

func dumpRows(rows []Row) string {
	s := ""
	for _, r := range rows {
		s += fmt.Sprint(r) + ";"
	}
	return s
}

func TestScanTableAndFilter(t *testing.T) {
	tab := newTestTable(t)
	for i := 0; i < 10; i++ {
		if _, err := tab.Insert(Row{Int(int64(i)), Str("p"), Int(int64(i * 2))}); err != nil {
			t.Fatal(err)
		}
	}
	it := Filter(ScanTable(tab), func(r Row) bool { return r[2].I >= 10 })
	rows := Collect(it)
	if len(rows) != 5 {
		t.Fatalf("filter returned %d rows", len(rows))
	}
	if got := it.Columns(); len(got) != 3 || got[0] != "id" {
		t.Errorf("Columns = %v", got)
	}
}

func TestProject(t *testing.T) {
	in := NewSliceIter([]string{"a", "b", "c"}, rowsOf([]any{1, "x", 2.5}))
	out := Project(in, []int{2, 0}, []string{"c2", "a2"})
	rows := Collect(out)
	if len(rows) != 1 || rows[0][0].F != 2.5 || rows[0][1].I != 1 {
		t.Errorf("Project rows = %v", rows)
	}
	if cols := out.Columns(); cols[0] != "c2" || cols[1] != "a2" {
		t.Errorf("Project cols = %v", cols)
	}
	// nil names reuse input names.
	in2 := NewSliceIter([]string{"a", "b"}, rowsOf([]any{1, 2}))
	out2 := Project(in2, []int{1}, nil)
	if cols := out2.Columns(); cols[0] != "b" {
		t.Errorf("default names = %v", cols)
	}
}

func TestHashJoinInner(t *testing.T) {
	left := NewSliceIter([]string{"id", "name"}, rowsOf(
		[]any{1, "a"}, []any{2, "b"}, []any{3, "c"}, []any{nil, "n"}))
	right := NewSliceIter([]string{"pid", "score"}, rowsOf(
		[]any{1, 10}, []any{1, 11}, []any{3, 30}, []any{nil, 99}))
	out := Collect(HashJoin(left, right, []int{0}, []int{0}, InnerJoin))
	if len(out) != 3 {
		t.Fatalf("inner join returned %d rows: %s", len(out), dumpRows(out))
	}
	// id=1 matches twice, id=3 once, NULL never.
	counts := map[int64]int{}
	for _, r := range out {
		counts[r[0].I]++
		if r[0].I != r[2].I {
			t.Errorf("join key mismatch in %v", r)
		}
	}
	if counts[1] != 2 || counts[3] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestHashJoinLeft(t *testing.T) {
	left := NewSliceIter([]string{"id"}, rowsOf([]any{1}, []any{2}))
	right := NewSliceIter([]string{"pid", "v"}, rowsOf([]any{1, "x"}))
	out := Collect(HashJoin(left, right, []int{0}, []int{0}, LeftJoin))
	if len(out) != 2 {
		t.Fatalf("left join returned %d rows", len(out))
	}
	var matched, unmatched bool
	for _, r := range out {
		if r[0].I == 1 && r[2].S == "x" {
			matched = true
		}
		if r[0].I == 2 && r[1].IsNull() && r[2].IsNull() {
			unmatched = true
		}
	}
	if !matched || !unmatched {
		t.Errorf("left join rows wrong: %s", dumpRows(out))
	}
}

func TestHashJoinSemiAnti(t *testing.T) {
	left := NewSliceIter([]string{"id"}, rowsOf([]any{1}, []any{2}, []any{3}))
	right := NewSliceIter([]string{"pid"}, rowsOf([]any{1}, []any{1}, []any{3}))
	semi := Collect(HashJoin(left, right, []int{0}, []int{0}, SemiJoin))
	if len(semi) != 2 {
		t.Errorf("semi join = %s", dumpRows(semi))
	}
	left2 := NewSliceIter([]string{"id"}, rowsOf([]any{1}, []any{2}, []any{3}))
	right2 := NewSliceIter([]string{"pid"}, rowsOf([]any{1}, []any{3}))
	anti := Collect(HashJoin(left2, right2, []int{0}, []int{0}, AntiJoin))
	if len(anti) != 1 || anti[0][0].I != 2 {
		t.Errorf("anti join = %s", dumpRows(anti))
	}
}

func TestSortMultiKey(t *testing.T) {
	in := NewSliceIter([]string{"a", "b"}, rowsOf(
		[]any{2, "x"}, []any{1, "z"}, []any{2, "a"}, []any{1, "a"}))
	out := Collect(Sort(in, SortSpec{Col: 0}, SortSpec{Col: 1, Desc: true}))
	want := "[1 \"z\"];[1 \"a\"];[2 \"x\"];[2 \"a\"];"
	if got := dumpRows(out); got != want {
		t.Errorf("sorted = %s, want %s", got, want)
	}
}

func TestGroupByAggregates(t *testing.T) {
	in := NewSliceIter([]string{"g", "v"}, rowsOf(
		[]any{"a", 1}, []any{"a", 2}, []any{"a", 2}, []any{"b", 10}, []any{"b", nil}))
	out := Collect(GroupBy(in, []int{0}, []AggSpec{
		{Func: AggCount, Name: "n"},
		{Func: AggCountDistinct, Col: 1, Name: "nd"},
		{Func: AggSum, Col: 1, Name: "sum"},
		{Func: AggMin, Col: 1, Name: "min"},
		{Func: AggMax, Col: 1, Name: "max"},
		{Func: AggAvg, Col: 1, Name: "avg"},
	}))
	if len(out) != 2 {
		t.Fatalf("groups = %s", dumpRows(out))
	}
	a, b := out[0], out[1]
	if a[0].S != "a" || a[1].I != 3 || a[2].I != 2 || a[3].I != 5 || a[4].I != 1 || a[5].I != 2 {
		t.Errorf("group a = %v", a)
	}
	if af := a[6].F; af < 1.66 || af > 1.67 {
		t.Errorf("avg(a) = %v", a[6])
	}
	// Group b: one NULL value — count counts rows, distinct/sum ignore NULL.
	if b[0].S != "b" || b[1].I != 2 || b[2].I != 1 || b[3].I != 10 {
		t.Errorf("group b = %v", b)
	}
}

func TestGroupByEmptyKeyGlobalAggregate(t *testing.T) {
	in := NewSliceIter([]string{"v"}, rowsOf([]any{1}, []any{2}, []any{3}))
	out := Collect(GroupBy(in, nil, []AggSpec{{Func: AggSum, Col: 0, Name: "s"}}))
	if len(out) != 1 || out[0][0].I != 6 {
		t.Errorf("global sum = %s", dumpRows(out))
	}
}

func TestDistinctLimitUnion(t *testing.T) {
	in := NewSliceIter([]string{"a"}, rowsOf([]any{1}, []any{2}, []any{1}, []any{3}, []any{2}))
	if got := Collect(Distinct(in)); len(got) != 3 {
		t.Errorf("distinct = %s", dumpRows(got))
	}
	in2 := NewSliceIter([]string{"a"}, rowsOf([]any{1}, []any{2}, []any{3}, []any{4}))
	if got := Collect(Limit(in2, 1, 2)); len(got) != 2 || got[0][0].I != 2 {
		t.Errorf("limit = %s", dumpRows(got))
	}
	u := Union(
		NewSliceIter([]string{"a"}, rowsOf([]any{1})),
		NewSliceIter([]string{"a"}, rowsOf([]any{2}, []any{3})),
	)
	if got := Collect(u); len(got) != 3 {
		t.Errorf("union = %s", dumpRows(got))
	}
	if got := Collect(Union()); len(got) != 0 {
		t.Errorf("empty union = %s", dumpRows(got))
	}
}

func TestScanRowIDsAndInsertFrom(t *testing.T) {
	tab := newTestTable(t)
	var ids []int64
	for i := 0; i < 5; i++ {
		id, _ := tab.Insert(Row{Int(int64(i)), Str("p"), Null()})
		ids = append(ids, id)
	}
	tab.Delete(ids[2])
	rows := Collect(ScanRowIDs(tab, ids))
	if len(rows) != 4 {
		t.Errorf("ScanRowIDs returned %d rows", len(rows))
	}
	dst := NewTable(MustSchema("dst",
		Column{Name: "id", Type: KInt},
		Column{Name: "name", Type: KString},
		Column{Name: "age", Type: KInt},
	))
	n, err := InsertFrom(dst, ScanTable(tab))
	if err != nil || n != 4 {
		t.Errorf("InsertFrom = %d, %v", n, err)
	}
}

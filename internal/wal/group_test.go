package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/gridmeta/hybridcat/internal/faultio"
)

// enqueueN enqueues n numbered payloads before anyone waits, so the
// whole set lands in one deterministic batch once maxBatch is reached.
func enqueueN(gw *GroupWriter, n int) []*Ticket {
	ts := make([]*Ticket, n)
	for i := range ts {
		ts[i] = gw.Enqueue([]byte(fmt.Sprintf("op-%d", i)))
	}
	return ts
}

func waitAll(t *testing.T, ts []*Ticket) []uint64 {
	t.Helper()
	seqs := make([]uint64, len(ts))
	var wg sync.WaitGroup
	for i, tk := range ts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seq, err := tk.Wait()
			if err != nil {
				t.Errorf("ticket %d: %v", i, err)
			}
			seqs[i] = seq
		}()
	}
	wg.Wait()
	return seqs
}

func TestGroupCommitSingleBatch(t *testing.T) {
	fs := faultio.NewMemFS()
	_, w := collect(t, fs, "wal")
	defer w.Close()
	gw := NewGroupWriter(w, time.Second, 8)

	ts := enqueueN(gw, 8)
	seqs := waitAll(t, ts)
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("ticket %d got seq %d, want %d (enqueue order must be seq order)", i, seq, i+1)
		}
	}
	st := gw.Stats()
	if st.Batches != 1 || st.Records != 8 || st.LargestBatch != 8 {
		t.Fatalf("stats = %+v, want one batch of 8", st)
	}
	if w.Stats().Syncs != 1 {
		t.Fatalf("syncs = %d, want 1 shared fsync", w.Stats().Syncs)
	}

	recs, w2 := collect(t, fs, "wal")
	defer w2.Close()
	if len(recs) != 8 {
		t.Fatalf("replayed %d records, want 8", len(recs))
	}
	for i, r := range recs {
		if string(r.Payload) != fmt.Sprintf("op-%d", i) {
			t.Fatalf("record %d payload %q", i, r.Payload)
		}
	}
}

func TestGroupCommitZeroWaitStillCommits(t *testing.T) {
	fs := faultio.NewMemFS()
	_, w := collect(t, fs, "wal")
	defer w.Close()
	gw := NewGroupWriter(w, 0, 4)
	tk := gw.Enqueue([]byte("solo"))
	seq, err := tk.Wait()
	if err != nil || seq != 1 {
		t.Fatalf("Wait = %d, %v", seq, err)
	}
	if st := gw.Stats(); st.Batches != 1 || st.Records != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGroupCommitConcurrentStress(t *testing.T) {
	fs := faultio.NewMemFS()
	_, w := collect(t, fs, "wal")
	defer w.Close()
	gw := NewGroupWriter(w, time.Millisecond, 16)

	const writers, per = 8, 25
	seen := make([][]uint64, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := gw.Enqueue([]byte(fmt.Sprintf("w%d-%d", g, i))).Wait()
				if err != nil {
					t.Errorf("writer %d op %d: %v", g, i, err)
					return
				}
				seen[g] = append(seen[g], seq)
			}
		}()
	}
	wg.Wait()
	gw.Drain()

	uniq := make(map[uint64]bool)
	for g := range seen {
		for i, seq := range seen[g] {
			if uniq[seq] {
				t.Fatalf("sequence %d acknowledged twice", seq)
			}
			uniq[seq] = true
			if i > 0 && seq <= seen[g][i-1] {
				t.Fatalf("writer %d saw non-monotonic seqs %d then %d", g, seen[g][i-1], seq)
			}
		}
	}
	if len(uniq) != writers*per {
		t.Fatalf("acknowledged %d unique seqs, want %d", len(uniq), writers*per)
	}
	recs, w2 := collect(t, fs, "wal")
	defer w2.Close()
	if len(recs) != writers*per {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*per)
	}
	if st := gw.Stats(); st.Batches >= writers*per {
		t.Fatalf("no coalescing: %d batches for %d records", st.Batches, writers*per)
	}
}

func TestGroupCommitFailurePoisonsAndHeals(t *testing.T) {
	mem := faultio.NewMemFS()
	// The log's create() costs one sync; fail the next one (the batch).
	fs := faultio.NewFaulty(mem, faultio.Fault{Op: faultio.OpSync, N: 2, Mode: faultio.FailOp})
	_, w := collect(t, fs, "wal")
	defer w.Close()
	gw := NewGroupWriter(w, time.Second, 4)

	ts := enqueueN(gw, 4)
	for i, tk := range ts {
		if _, err := tk.Wait(); !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("ticket %d: err = %v, want injected fault", i, err)
		}
	}
	if gw.Poisoned() == nil {
		t.Fatal("group not poisoned after batch failure")
	}
	if _, err := gw.Enqueue([]byte("rejected")).Wait(); err == nil {
		t.Fatal("enqueue on poisoned group succeeded")
	}
	if st := gw.Stats(); st.Failures != 1 || st.Batches != 0 {
		t.Fatalf("stats = %+v", st)
	}

	if err := gw.Heal(); err != nil {
		t.Fatalf("heal: %v", err)
	}
	seq, err := gw.Enqueue([]byte("after-heal")).Wait()
	if err != nil {
		t.Fatalf("commit after heal: %v", err)
	}
	if seq != 1 {
		t.Fatalf("seq after failed batch = %d, want 1 (failed batch must not consume seqs)", seq)
	}
	recs, w2 := collect(t, fs, "wal")
	defer w2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "after-heal" {
		t.Fatalf("replayed %v, want only the post-heal record", recs)
	}
}

// gateFS lets the test hold a Sync open so commits can queue up behind
// an in-flight batch, then release it as a failure.
type gateFS struct {
	faultio.FS
	mu      sync.Mutex
	entered chan struct{} // closed when a gated Sync begins
	release chan struct{} // Sync blocks until closed
	fail    bool
	armed   bool
}

func (g *gateFS) OpenAppend(name string) (faultio.File, error) {
	f, err := g.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, g: g}, nil
}

func (g *gateFS) Create(name string) (faultio.File, error) {
	f, err := g.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, g: g}, nil
}

type gateFile struct {
	faultio.File
	g *gateFS
}

func (f *gateFile) Sync() error {
	f.g.mu.Lock()
	armed := f.g.armed
	f.g.armed = false
	f.g.mu.Unlock()
	if !armed {
		return f.File.Sync()
	}
	close(f.g.entered)
	<-f.g.release
	if f.g.fail {
		return faultio.ErrInjected
	}
	return f.File.Sync()
}

func TestGroupCommitPoisonFailsQueuedBehind(t *testing.T) {
	g := &gateFS{FS: faultio.NewMemFS(), entered: make(chan struct{}), release: make(chan struct{}), fail: true}
	_, w := collect(t, g, "wal")
	defer w.Close()
	gw := NewGroupWriter(w, 0, 8)

	g.mu.Lock()
	g.armed = true
	g.mu.Unlock()
	first := gw.Enqueue([]byte("doomed"))
	firstErr := make(chan error, 1)
	go func() { _, err := first.Wait(); firstErr <- err }()
	<-g.entered // batch 1 is mid-fsync

	queued := gw.Enqueue([]byte("built-on-doomed"))
	close(g.release) // fsync fails

	if err := <-firstErr; !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("leader err = %v", err)
	}
	if _, err := queued.Wait(); err == nil {
		t.Fatal("commit queued behind a failed batch was acknowledged")
	}
	recs, w2 := collect(t, g.FS, "wal")
	defer w2.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records, want 0", len(recs))
	}
}

func TestGroupCommitAfterSyncRunsBeforeAck(t *testing.T) {
	fs := faultio.NewMemFS()
	_, w := collect(t, fs, "wal")
	defer w.Close()
	gw := NewGroupWriter(w, time.Second, 3)

	var ts []*Ticket
	hookSawPending := false
	hooks := 0
	gw.AfterSync = func() {
		hooks++
		for _, tk := range ts {
			if !tk.Done() {
				hookSawPending = true
			}
		}
	}
	ts = enqueueN(gw, 3)
	waitAll(t, ts)
	if hooks != 1 {
		t.Fatalf("AfterSync ran %d times, want once per batch", hooks)
	}
	if !hookSawPending {
		t.Fatal("AfterSync ran after tickets were acknowledged")
	}
}

func TestCommitBatchRollback(t *testing.T) {
	mem := faultio.NewMemFS()
	fs := faultio.NewFaulty(mem, faultio.Fault{Op: faultio.OpSync, N: 2, Mode: faultio.FailOp})
	_, w := collect(t, fs, "wal")
	defer w.Close()
	if _, err := w.CommitBatch([][]byte{[]byte("a"), []byte("b"), []byte("c")}); err == nil {
		t.Fatal("batch with failing fsync succeeded")
	}
	if w.LastSeq() != 0 {
		t.Fatalf("LastSeq after failed batch = %d, want 0", w.LastSeq())
	}
	first, err := w.CommitBatch([][]byte{[]byte("x"), []byte("y")})
	if err != nil {
		t.Fatalf("retry batch: %v", err)
	}
	if first != 1 {
		t.Fatalf("first seq = %d, want 1", first)
	}
	recs, w2 := collect(t, fs, "wal")
	defer w2.Close()
	if len(recs) != 2 || string(recs[0].Payload) != "x" || string(recs[1].Payload) != "y" {
		t.Fatalf("replayed %v", recs)
	}
}

func TestRecordsSince(t *testing.T) {
	fs := faultio.NewMemFS()
	_, w := collect(t, fs, "wal")
	defer w.Close()
	for i := 0; i < 5; i++ {
		if _, err := w.Commit([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	recs, last, gap, err := w.RecordsSince(2)
	if err != nil || gap {
		t.Fatalf("RecordsSince(2): gap=%v err=%v", gap, err)
	}
	if last != 5 || len(recs) != 3 || recs[0].Seq != 3 || recs[2].Seq != 5 {
		t.Fatalf("RecordsSince(2) = %v, last=%d", recs, last)
	}
	if recs, _, gap, _ := w.RecordsSince(5); gap || len(recs) != 0 {
		t.Fatalf("RecordsSince(5) = %v, gap=%v", recs, gap)
	}
	if recs, _, gap, _ := w.RecordsSince(0); gap || len(recs) != 5 {
		t.Fatalf("RecordsSince(0) = %d recs, gap=%v", len(recs), gap)
	}

	// A checkpoint truncates the log; seqs at or below the reset point
	// are gone, and asking for them must report a gap, not silence.
	if err := w.Reset(6); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Commit([]byte("r5")); err != nil {
		t.Fatal(err)
	}
	if recs, last, gap, err := w.RecordsSince(5); gap || err != nil || len(recs) != 1 || recs[0].Seq != 6 || last != 6 {
		t.Fatalf("RecordsSince(5) after reset = %v, last=%d, gap=%v, err=%v", recs, last, gap, err)
	}
	if _, _, gap, _ := w.RecordsSince(3); !gap {
		t.Fatal("RecordsSince(3) after reset must report a gap")
	}
	if _, _, gap, _ := w.RecordsSince(0); !gap {
		t.Fatal("RecordsSince(0) after reset must report a gap")
	}
}

func TestDecodeFramesTornAtEveryOffset(t *testing.T) {
	var stream []byte
	for i := 1; i <= 3; i++ {
		stream = append(stream, EncodeRecord(uint64(i), []byte(fmt.Sprintf("payload-%d", i)))...)
	}
	full, err := DecodeFrames(stream)
	if err != nil || len(full) != 3 {
		t.Fatalf("full decode: %d recs, %v", len(full), err)
	}
	for cut := 0; cut <= len(stream); cut++ {
		recs, err := DecodeFrames(stream[:cut])
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		for i, r := range recs {
			if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, full[i].Payload) {
				t.Fatalf("cut %d: record %d = {%d %q}", cut, i, r.Seq, r.Payload)
			}
		}
		// A tear can only hide whole trailing frames, never corrupt
		// the decoded prefix.
		if want := 3; cut < len(stream) && len(recs) > want {
			t.Fatalf("cut %d decoded %d records", cut, len(recs))
		}
	}
}

func TestDecodeFramesInteriorCorruption(t *testing.T) {
	var stream []byte
	for i := 1; i <= 3; i++ {
		stream = append(stream, EncodeRecord(uint64(i), []byte(fmt.Sprintf("payload-%d", i)))...)
	}
	frameLen := len(stream) / 3
	bad := append([]byte(nil), stream...)
	bad[frameLen+recHeader+9] ^= 0x01 // flip a payload bit in frame 2
	recs, err := DecodeFrames(bad)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior corruption: err = %v, want ErrCorrupt", err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("decoded %v before corruption", recs)
	}
}

func TestGroupCommitDrain(t *testing.T) {
	fs := faultio.NewMemFS()
	_, w := collect(t, fs, "wal")
	defer w.Close()
	gw := NewGroupWriter(w, time.Millisecond, 4)
	ts := enqueueN(gw, 6)
	done := make(chan struct{})
	go func() { waitAll(t, ts); close(done) }()
	gw.Drain()
	for i, tk := range ts {
		if !tk.Done() {
			t.Fatalf("Drain returned with ticket %d pending", i)
		}
	}
	<-done
}

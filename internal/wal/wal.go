// Package wal implements the catalog's write-ahead log: an append-only
// file of length-prefixed, CRC-checksummed, sequence-numbered records
// over a faultio.FS.
//
// On-disk layout:
//
//	header:  8 bytes  magic "HCWAL01\n"
//	record:  u32 length of (seq + payload)
//	         u32 CRC-32C of (length ∥ seq ∥ payload)
//	         u64 sequence number (strictly increasing within a file)
//	         payload bytes
//
// The checksum covers the length prefix, so a rotted length byte is
// detected like any other corruption whenever the claimed extent still
// lies inside the file. (A rotted length that claims an extent past
// end-of-file is indistinguishable from a record torn by a crash and is
// truncated — the same trade-off LevelDB-style logs make.)
//
// Every record is written with a single Write call, so a crash tears a
// record into a prefix, never an interleaving. Open replays intact
// records and distinguishes the two failure shapes a log can be left in:
//
//   - a torn tail — the final record is incomplete or fails its
//     checksum and nothing follows it; the tail is truncated away and
//     recovery proceeds (the record was never acknowledged), and
//   - a corrupt body — a record that checksums wrong with valid data
//     after it, i.e. bytes rotted in place; Open refuses the log rather
//     than silently dropping acknowledged history.
//
// Commit is append + fsync; if either fails the writer truncates the log
// back to its last durable length before returning the error, so a
// failed commit can never leak a half-written record into the tail that
// a later successful commit would then appear to acknowledge.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/obs"
)

const (
	magic      = "HCWAL01\n"
	headerSize = 8
	// recHeader is u32 length + u32 crc.
	recHeader = 8
	// maxRecord bounds a single record so a corrupt length prefix cannot
	// drive a giant allocation.
	maxRecord = 1 << 30
)

// ErrCorrupt marks a log whose interior bytes fail their checksum; the
// log cannot be trusted and recovery must refuse it.
var ErrCorrupt = errors.New("wal: corrupt record")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one replayed log entry.
type Record struct {
	Seq     uint64
	Payload []byte
}

// Stats are the writer's lifetime counters.
type Stats struct {
	LastSeq  uint64 `json:"last_seq"`
	Size     int64  `json:"size_bytes"`
	Appends  uint64 `json:"appends"`
	Syncs    uint64 `json:"syncs"`
	Resets   uint64 `json:"resets"`
	TornTail int64  `json:"torn_tail_bytes"` // bytes truncated at Open
}

// Writer appends records to an open log. All methods are safe for
// concurrent use: an internal mutex serializes appends, resets, and the
// replication read path (RecordsSince), so a group-commit leader can
// flush a batch while stream handlers read the durable prefix.
type Writer struct {
	// NoSync skips the fsync in Commit; for benchmarking the fsync cost
	// only — acknowledged records may be lost on crash.
	NoSync bool

	mu     sync.Mutex
	fs     faultio.FS
	path   string
	f      faultio.File
	off    int64 // durable end of the log
	seq    uint64
	base   uint64 // sequence just before the current file's first record
	broken error
	stats  Stats
	m      walMetrics
}

// walMetrics are the writer's registry handles; all nil (no-ops) until
// SetMetrics installs them.
type walMetrics struct {
	appends    *obs.Counter
	bytes      *obs.Counter
	fsyncs     *obs.Counter
	fsyncNanos *obs.Histogram
	resets     *obs.Counter
}

// SetMetrics attaches registry instrumentation: wal_appends_total,
// wal_append_bytes_total, wal_fsyncs_total, wal_resets_total counters
// and a wal_fsync_nanos latency histogram. The Stats counters keep
// working independently. Call before the writer is used; nil reg is a
// no-op (the disabled default).
func (w *Writer) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	w.m = walMetrics{
		appends:    reg.Counter("wal_appends_total"),
		bytes:      reg.Counter("wal_append_bytes_total"),
		fsyncs:     reg.Counter("wal_fsyncs_total"),
		fsyncNanos: reg.Histogram("wal_fsync_nanos"),
		resets:     reg.Counter("wal_resets_total"),
	}
}

// Open opens (or creates) the log at path, replaying every intact record
// through fn in order. A torn tail is truncated; a corrupt interior
// record returns an error wrapping ErrCorrupt. The returned writer is
// positioned after the last intact record.
func Open(fs faultio.FS, path string, fn func(Record) error) (*Writer, error) {
	w := &Writer{fs: fs, path: path}
	size, err := fs.Size(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return w, w.create()
	case err != nil:
		return nil, err
	}
	data, err := readAll(fs, path)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != size {
		return nil, fmt.Errorf("wal: %s: read %d bytes, stat says %d", path, len(data), size)
	}
	if len(data) < headerSize {
		// Crash during initial creation, before the header was durable:
		// no record can have been acknowledged, start fresh.
		w.stats.TornTail = int64(len(data))
		return w, w.create()
	}
	if string(data[:headerSize]) != magic {
		return nil, fmt.Errorf("wal: %s: bad magic %q: %w", path, data[:headerSize], ErrCorrupt)
	}
	end, err := w.scan(data, fn)
	if err != nil {
		return nil, err
	}
	if end < int64(len(data)) {
		w.stats.TornTail = int64(len(data)) - end
		if err := fs.Truncate(path, end); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	w.off = end
	w.f, err = fs.OpenAppend(path)
	return w, err
}

// scan walks the records in data, calling fn for each intact one, and
// returns the offset after the last intact record.
func (w *Writer) scan(data []byte, fn func(Record) error) (int64, error) {
	o := headerSize
	for {
		if len(data)-o < recHeader {
			return int64(o), nil // torn: partial record header
		}
		length := binary.LittleEndian.Uint32(data[o:])
		sum := binary.LittleEndian.Uint32(data[o+4:])
		if length < 8 || length > maxRecord {
			return 0, fmt.Errorf("wal: record at offset %d: bad length %d: %w", o, length, ErrCorrupt)
		}
		body := o + recHeader
		end := body + int(length)
		if end > len(data) {
			return int64(o), nil // torn: record cut short by the crash
		}
		got := crc32.Checksum(data[o:o+4], crcTable)
		got = crc32.Update(got, crcTable, data[body:end])
		if got != sum {
			if end == len(data) {
				// The final record checksums wrong and nothing follows:
				// a partial page writeback of the crashed append. Drop it.
				return int64(o), nil
			}
			return 0, fmt.Errorf("wal: record at offset %d: checksum mismatch: %w", o, ErrCorrupt)
		}
		seq := binary.LittleEndian.Uint64(data[body:])
		if seq <= w.seq {
			return 0, fmt.Errorf("wal: record at offset %d: sequence %d after %d: %w", o, seq, w.seq, ErrCorrupt)
		}
		if o == headerSize {
			w.base = seq - 1
		}
		w.seq = seq
		if fn != nil {
			if err := fn(Record{Seq: seq, Payload: data[body+8 : end]}); err != nil {
				return 0, err
			}
		}
		o = end
	}
}

// create writes a fresh log containing only the header and syncs it.
func (w *Writer) create() error {
	f, err := w.fs.Create(w.path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.off = headerSize
	w.base = w.seq
	return nil
}

// EncodeRecord assembles the on-disk (and on-wire: the replication
// stream reuses the file framing) bytes of one record.
func EncodeRecord(seq uint64, payload []byte) []byte {
	buf := make([]byte, recHeader+8+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(8+len(payload)))
	binary.LittleEndian.PutUint64(buf[recHeader:], seq)
	copy(buf[recHeader+8:], payload)
	sum := crc32.Checksum(buf[:4], crcTable)
	sum = crc32.Update(sum, crcTable, buf[recHeader:])
	binary.LittleEndian.PutUint32(buf[4:], sum)
	return buf
}

// Commit appends one record and makes it durable, returning its sequence
// number. On any write or sync failure the log is truncated back to its
// previous durable length, so the failed record cannot surface after a
// crash; the in-memory mutation it described must be rolled back by the
// caller.
func (w *Writer) Commit(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.commitLocked([][]byte{payload})
}

// CommitBatch appends every payload as its own record — consecutive
// sequence numbers, one concatenated Write, one fsync — and returns the
// first record's sequence number (payload i has sequence first+i). The
// batch is atomic with respect to failure: if the write or sync fails
// the log is truncated back to its previous durable length, no sequence
// is consumed, and none of the batch's records can surface after a
// crash. (A crash during the sync itself may still persist a prefix of
// the batch's records — each is independently checksummed, so recovery
// replays the intact prefix exactly like any torn tail.)
func (w *Writer) CommitBatch(payloads [][]byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.commitLocked(payloads)
}

func (w *Writer) commitLocked(payloads [][]byte) (uint64, error) {
	if w.broken != nil {
		return 0, fmt.Errorf("wal: writer is wedged by an earlier failure: %w", w.broken)
	}
	if len(payloads) == 0 {
		return 0, errors.New("wal: empty commit batch")
	}
	first := w.seq + 1
	var buf []byte
	for i, p := range payloads {
		if len(p) > maxRecord-8 {
			return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(p), maxRecord)
		}
		buf = append(buf, EncodeRecord(first+uint64(i), p)...)
	}
	if _, err := w.f.Write(buf); err != nil {
		w.rollback()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.stats.Appends += uint64(len(payloads))
	w.m.appends.Add(uint64(len(payloads)))
	w.m.bytes.Add(uint64(len(buf)))
	if !w.NoSync {
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			w.rollback()
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
		w.stats.Syncs++
		w.m.fsyncs.Inc()
		w.m.fsyncNanos.Observe(time.Since(start).Nanoseconds())
	}
	w.seq += uint64(len(payloads))
	w.off += int64(len(buf))
	return first, nil
}

// Sync flushes outstanding appends (meaningful with NoSync commits).
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	w.stats.Syncs++
	w.m.fsyncs.Inc()
	w.m.fsyncNanos.Observe(time.Since(start).Nanoseconds())
	return nil
}

// rollback restores the log file to the last durable length after a
// failed append. If the cleanup itself fails the writer wedges: further
// commits are refused because the tail's content is unknown.
func (w *Writer) rollback() {
	w.f.Close()
	if err := w.fs.Truncate(w.path, w.off); err != nil {
		w.broken = fmt.Errorf("wal: truncate after failed append: %w", err)
		return
	}
	f, err := w.fs.OpenAppend(w.path)
	if err != nil {
		w.broken = fmt.Errorf("wal: reopen after failed append: %w", err)
		return
	}
	w.f = f
}

// Reset replaces the log with a fresh one whose records will start at
// nextSeq; called after a checkpoint has made the old records redundant.
// A failed reset leaves the writer on the old log, which stays correct
// (replay skips records at or below the checkpoint's sequence).
func (w *Writer) Reset(nextSeq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	tmp := w.path + ".tmp"
	f, err := w.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := w.fs.Rename(tmp, w.path); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	w.f.Close()
	nf, err := w.fs.OpenAppend(w.path)
	if err != nil {
		w.broken = fmt.Errorf("wal: reopen after reset: %w", err)
		return w.broken
	}
	w.f = nf
	w.off = headerSize
	if nextSeq > 0 {
		w.seq = nextSeq - 1
	}
	w.base = w.seq
	w.stats.Resets++
	w.m.resets.Inc()
	return nil
}

// SetNextSeq raises the next sequence number to at least seq; recovery
// uses it so records appended after a snapshot-only restart continue
// above the snapshot's high-water mark.
func (w *Writer) SetNextSeq(seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq > 0 && seq-1 > w.seq {
		w.seq = seq - 1
		if w.off == headerSize {
			w.base = w.seq
		}
	}
}

// LastSeq returns the sequence number of the last committed record (or
// the recovered high-water mark).
func (w *Writer) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Size returns the log's durable length in bytes.
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.off
}

// Broken reports the wedging error from an earlier failed cleanup, or
// nil while the writer is healthy. Health endpoints use it to surface
// the wedged state without attempting a commit.
func (w *Writer) Broken() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.broken
}

// Stats returns the writer's counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.stats
	s.LastSeq = w.seq
	s.Size = w.off
	return s
}

// RecordsSince reads back the durable records with sequence numbers
// strictly greater than from, serving the replication stream. It also
// returns the log's current last sequence and whether the request hit a
// gap: a checkpoint has truncated records after from, so the caller
// cannot catch up from the log alone and must bootstrap from a
// snapshot. Runs under the writer mutex against the durable prefix, so
// a concurrently flushing group-commit batch is either fully visible or
// not yet visible.
func (w *Writer) RecordsSince(from uint64) (recs []Record, lastSeq uint64, gap bool, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if from < w.base {
		return nil, w.seq, true, nil
	}
	if from >= w.seq {
		return nil, w.seq, false, nil
	}
	data, err := readAll(w.fs, w.path)
	if err != nil {
		return nil, w.seq, false, fmt.Errorf("wal: stream read: %w", err)
	}
	if int64(len(data)) > w.off {
		data = data[:w.off]
	}
	o := int64(headerSize)
	for o < w.off {
		length := binary.LittleEndian.Uint32(data[o:])
		body := o + recHeader
		end := body + int64(length)
		if end > w.off {
			return nil, w.seq, false, fmt.Errorf("wal: stream read: record at %d overruns durable end %d", o, w.off)
		}
		seq := binary.LittleEndian.Uint64(data[body:])
		if seq > from {
			recs = append(recs, Record{Seq: seq, Payload: data[body+8 : end]})
		}
		o = end
	}
	return recs, w.seq, false, nil
}

// Close closes the underlying file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	return w.f.Close()
}

// DecodeFrames parses a replication stream body: a concatenation of
// record frames in the file framing (no file header). It decodes as
// many intact frames as data holds. A torn trailing frame — the normal
// result of a cut connection — is silently dropped, since the tailer
// will re-request from its last applied sequence; a checksum mismatch
// on a complete interior frame returns the frames decoded before it
// plus an error wrapping ErrCorrupt, telling the caller the transport
// delivered rot rather than a tear.
func DecodeFrames(data []byte) ([]Record, error) {
	var recs []Record
	o := 0
	for {
		if len(data)-o < recHeader {
			return recs, nil // torn frame header
		}
		length := binary.LittleEndian.Uint32(data[o:])
		sum := binary.LittleEndian.Uint32(data[o+4:])
		if length < 8 || length > maxRecord {
			return recs, fmt.Errorf("wal: stream frame at offset %d: bad length %d: %w", o, length, ErrCorrupt)
		}
		body := o + recHeader
		end := body + int(length)
		if end > len(data) {
			return recs, nil // torn frame body
		}
		got := crc32.Checksum(data[o:o+4], crcTable)
		got = crc32.Update(got, crcTable, data[body:end])
		if got != sum {
			if end == len(data) {
				return recs, nil // torn final frame (partial writeback shape)
			}
			return recs, fmt.Errorf("wal: stream frame at offset %d: checksum mismatch: %w", o, ErrCorrupt)
		}
		recs = append(recs, Record{
			Seq:     binary.LittleEndian.Uint64(data[body:]),
			Payload: data[body+8 : end],
		})
		o = end
	}
}

// readAll reads the whole file at path.
func readAll(fs faultio.FS, path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

package wal

import (
	"errors"
	"fmt"
	"testing"

	"github.com/gridmeta/hybridcat/internal/faultio"
)

func collect(t *testing.T, fs faultio.FS, path string) ([]Record, *Writer) {
	t.Helper()
	var recs []Record
	w, err := Open(fs, path, func(r Record) error {
		recs = append(recs, Record{Seq: r.Seq, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return recs, w
}

func TestCommitAndReplay(t *testing.T) {
	fs := faultio.NewMemFS()
	_, w := collect(t, fs, "wal")
	for i := 0; i < 5; i++ {
		seq, err := w.Commit([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	w.Close()
	recs, w2 := collect(t, fs, "wal")
	defer w2.Close()
	if len(recs) != 5 {
		t.Fatalf("replayed %d records", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || string(r.Payload) != fmt.Sprintf("record-%d", i) {
			t.Fatalf("record %d = {%d %q}", i, r.Seq, r.Payload)
		}
	}
	if w2.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d", w2.LastSeq())
	}
	if seq, err := w2.Commit([]byte("after")); err != nil || seq != 6 {
		t.Fatalf("commit after reopen: %d, %v", seq, err)
	}
}

func TestCrashLosesOnlyUnsynced(t *testing.T) {
	fs := faultio.NewMemFS()
	_, w := collect(t, fs, "wal")
	if _, err := w.Commit([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	w.NoSync = true
	if _, err := w.Commit([]byte("volatile")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	recs, w2 := collect(t, fs, "wal")
	defer w2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "durable" {
		t.Fatalf("recovered %v", recs)
	}
}

// TestTornTailEveryOffset truncates the log at every byte length and
// asserts recovery always succeeds with a prefix of the records.
func TestTornTailEveryOffset(t *testing.T) {
	base := faultio.NewMemFS()
	_, w := collect(t, base, "wal")
	payloads := [][]byte{[]byte("alpha"), []byte("beta-beta"), []byte("c")}
	var ends []int64 // durable size after each commit
	for _, p := range payloads {
		if _, err := w.Commit(p); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, w.Size())
	}
	full := base.Bytes("wal")
	for cut := 0; cut <= len(full); cut++ {
		fs := faultio.NewMemFS()
		fs.SetBytes("wal", full[:cut])
		recs, w2 := collect(t, fs, "wal")
		// Expected record count: how many commits fit entirely below cut.
		want := 0
		for _, e := range ends {
			if int64(cut) >= e {
				want++
			}
		}
		if len(recs) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), want)
		}
		for i, r := range recs {
			if string(r.Payload) != string(payloads[i]) {
				t.Fatalf("cut %d: record %d = %q", cut, i, r.Payload)
			}
		}
		// The log is usable after tail truncation.
		if _, err := w2.Commit([]byte("resume")); err != nil {
			t.Fatalf("cut %d: commit after recovery: %v", cut, err)
		}
		w2.Close()
	}
}

// TestCorruptInteriorRefused flips one byte in every position of the
// first record's extent (while later records exist) and requires Open to
// fail rather than drop acknowledged history.
func TestCorruptInteriorRefused(t *testing.T) {
	base := faultio.NewMemFS()
	_, w := collect(t, base, "wal")
	if _, err := w.Commit([]byte("first-record")); err != nil {
		t.Fatal(err)
	}
	firstEnd := w.Size()
	if _, err := w.Commit([]byte("second-record")); err != nil {
		t.Fatal(err)
	}
	full := base.Bytes("wal")
	fileLen := len(full)
	for off := headerSize; off < int(firstEnd); off++ {
		for _, bit := range []byte{0x01, 0x40} {
			mutated := append([]byte(nil), full...)
			mutated[off] ^= bit
			// A flipped length byte claiming an extent past EOF reads as a
			// torn tail — undetectable by design; skip those combinations.
			if off < headerSize+4 {
				length := int(mutated[headerSize]) | int(mutated[headerSize+1])<<8 |
					int(mutated[headerSize+2])<<16 | int(mutated[headerSize+3])<<24
				if headerSize+recHeader+length > fileLen {
					continue
				}
			}
			fs := faultio.NewMemFS()
			fs.SetBytes("wal", mutated)
			_, err := Open(fs, "wal", nil)
			if err == nil {
				t.Fatalf("offset %d bit %#x: corrupt interior accepted", off, bit)
			}
		}
	}
}

// TestCorruptLengthInExtentRefused flips the length field to a smaller
// in-file value; the length-covering checksum must catch it.
func TestCorruptLengthInExtentRefused(t *testing.T) {
	base := faultio.NewMemFS()
	_, w := collect(t, base, "wal")
	_, _ = w.Commit([]byte("first-record"))
	_, _ = w.Commit([]byte("second-record"))
	full := base.Bytes("wal")
	mutated := append([]byte(nil), full...)
	mutated[headerSize] ^= 0x04 // 20 -> 16: extent stays inside the file
	fs := faultio.NewMemFS()
	fs.SetBytes("wal", mutated)
	if _, err := Open(fs, "wal", nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// TestTailBitFlipTruncates: a checksum-failing final record is
// indistinguishable from a torn append and is dropped, keeping earlier
// records.
func TestTailBitFlipTruncates(t *testing.T) {
	base := faultio.NewMemFS()
	_, w := collect(t, base, "wal")
	_, _ = w.Commit([]byte("keep"))
	keepEnd := w.Size()
	_, _ = w.Commit([]byte("flip"))
	full := base.Bytes("wal")
	mutated := append([]byte(nil), full...)
	mutated[len(mutated)-1] ^= 0x01
	fs := faultio.NewMemFS()
	fs.SetBytes("wal", mutated)
	recs, w2 := collect(t, fs, "wal")
	defer w2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "keep" {
		t.Fatalf("recovered %v", recs)
	}
	if n, _ := fs.Size("wal"); n != keepEnd {
		t.Fatalf("file not truncated: %d != %d", n, keepEnd)
	}
}

func TestCommitFailureRollsBackTail(t *testing.T) {
	for _, kind := range []faultio.OpKind{faultio.OpWrite, faultio.OpSync} {
		t.Run(string(kind), func(t *testing.T) {
			mem := faultio.NewMemFS()
			// Fault the op belonging to the 2nd commit: create+header cost
			// 1 write + 1 sync, each commit 1 write + 1 sync.
			faulty := faultio.NewFaulty(mem, faultio.Fault{Op: kind, N: 3, Mode: faultio.FailOp, Torn: 7})
			_, w := collect(t, faulty, "wal")
			if _, err := w.Commit([]byte("good")); err != nil {
				t.Fatal(err)
			}
			if _, err := w.Commit([]byte("fails")); !errors.Is(err, faultio.ErrInjected) {
				t.Fatalf("want injected failure, got %v", err)
			}
			// The transient fault cleared; the log must have healed.
			if seq, err := w.Commit([]byte("retry")); err != nil || seq != 2 {
				t.Fatalf("retry commit: seq %d, err %v", seq, err)
			}
			w.Close()
			recs, w2 := collect(t, mem, "wal")
			defer w2.Close()
			if len(recs) != 2 || string(recs[0].Payload) != "good" || string(recs[1].Payload) != "retry" {
				t.Fatalf("recovered %v", recs)
			}
		})
	}
}

func TestResetStartsFreshLog(t *testing.T) {
	fs := faultio.NewMemFS()
	_, w := collect(t, fs, "wal")
	for i := 0; i < 3; i++ {
		_, _ = w.Commit([]byte("old"))
	}
	if err := w.Reset(4); err != nil {
		t.Fatal(err)
	}
	if w.Size() != headerSize {
		t.Fatalf("size after reset = %d", w.Size())
	}
	if seq, err := w.Commit([]byte("new")); err != nil || seq != 4 {
		t.Fatalf("post-reset commit: %d, %v", seq, err)
	}
	w.Close()
	recs, w2 := collect(t, fs, "wal")
	defer w2.Close()
	if len(recs) != 1 || recs[0].Seq != 4 || string(recs[0].Payload) != "new" {
		t.Fatalf("recovered %v", recs)
	}
}

func TestSetNextSeq(t *testing.T) {
	fs := faultio.NewMemFS()
	_, w := collect(t, fs, "wal")
	w.SetNextSeq(100)
	if seq, err := w.Commit([]byte("x")); err != nil || seq != 100 {
		t.Fatalf("seq = %d, %v", seq, err)
	}
	w.SetNextSeq(50) // must never move backwards
	if seq, err := w.Commit([]byte("y")); err != nil || seq != 101 {
		t.Fatalf("seq = %d, %v", seq, err)
	}
}

func TestBadMagicRefused(t *testing.T) {
	fs := faultio.NewMemFS()
	fs.SetBytes("wal", []byte("NOTAWAL!with trailing data"))
	if _, err := Open(fs, "wal", nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestShortHeaderRecreated(t *testing.T) {
	fs := faultio.NewMemFS()
	fs.SetBytes("wal", []byte("HCW")) // crash during creation
	recs, w := collect(t, fs, "wal")
	defer w.Close()
	if len(recs) != 0 {
		t.Fatalf("records from a torn header: %v", recs)
	}
	if _, err := w.Commit([]byte("ok")); err != nil {
		t.Fatal(err)
	}
}

package wal

import (
	"fmt"
	"sync"
	"time"

	"github.com/gridmeta/hybridcat/internal/obs"
)

// GroupWriter coalesces concurrent commits into shared fsyncs. Callers
// Enqueue a payload (cheap, non-blocking) and then Wait on the returned
// Ticket; the first waiter of an idle writer is promoted to batch
// leader, collects followers for up to MaxWait (or until MaxBatch
// payloads are queued), flushes the whole batch with one concatenated
// append and one fsync via Writer.CommitBatch, and acknowledges every
// ticket only after the batch is durable. Leadership hands off to the
// head of the queue that accumulated during the flush, so a saturated
// writer pipelines: batch N+1 collects while batch N syncs.
//
// Failure model: a failed batch poisons the group — every ticket in the
// failed batch and everything queued behind it fails, and further
// Enqueues fail immediately until Heal. That is deliberate: queued
// commits were built on top of the failed ones' state (the catalog's
// staged MVCC chain), so committing them without their predecessors
// would leave a log that replays to a state no reader ever observed.
type GroupWriter struct {
	// AfterSync, when non-nil, runs after a batch's fsync succeeds and
	// before any of its tickets are acknowledged. Crash-matrix tests use
	// it to probe the post-fsync-pre-ack boundary; the hook must be
	// followed by simulated process death, because the records it
	// observes are durable but not yet acknowledged to their committers.
	// Set before the writer is shared between goroutines.
	AfterSync func()

	w        *Writer
	maxWait  time.Duration
	maxBatch int

	mu     sync.Mutex
	cond   *sync.Cond // broadcast whenever the queue drains or a leader retires
	queue  []*Ticket
	leader bool // a promoted leader is collecting or flushing
	poison error
	full   chan struct{} // buffered(1): queue reached maxBatch
	stats  GroupStats
	m      groupMetrics
}

// GroupStats are a GroupWriter's lifetime counters.
type GroupStats struct {
	Batches      uint64 `json:"batches"`
	Records      uint64 `json:"records"`
	LargestBatch int    `json:"largest_batch"`
	Failures     uint64 `json:"failures"`
}

// groupMetrics are the registry handles; nil (no-op) until SetMetrics.
type groupMetrics struct {
	batches   *obs.Counter
	records   *obs.Counter
	batchSize *obs.Histogram
}

// SetMetrics attaches registry instrumentation: wal_group_batches_total
// and wal_group_records_total counters plus a wal_group_batch_records
// size histogram. Call before the group writer is shared; nil reg is a
// no-op (the disabled default).
func (gw *GroupWriter) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	gw.m = groupMetrics{
		batches:   reg.Counter("wal_group_batches_total"),
		records:   reg.Counter("wal_group_records_total"),
		batchSize: reg.Histogram("wal_group_batch_records"),
	}
}

// NewGroupWriter wraps w with group commit. maxWait is the leader's
// collection window (0 flushes as soon as the leader is promoted, which
// still batches whatever queued in the meantime); maxBatch caps a
// batch's record count and cuts the window short when reached (values
// < 1 default to 64).
func NewGroupWriter(w *Writer, maxWait time.Duration, maxBatch int) *GroupWriter {
	if maxBatch < 1 {
		maxBatch = 64
	}
	if maxWait < 0 {
		maxWait = 0
	}
	gw := &GroupWriter{
		w:        w,
		maxWait:  maxWait,
		maxBatch: maxBatch,
		full:     make(chan struct{}, 1),
	}
	gw.cond = sync.NewCond(&gw.mu)
	return gw
}

// Ticket is one enqueued commit's handle: Wait blocks until the
// payload's batch is durable (possibly by leading the flush itself) and
// returns the record's sequence number.
type Ticket struct {
	gw      *GroupWriter
	payload []byte
	promote chan struct{} // buffered(1): this ticket should lead
	done    chan struct{} // closed once seq/err are set
	seq     uint64
	err     error
}

// Enqueue adds one record payload to the pending batch and returns its
// ticket. It never blocks on I/O; call Wait on the ticket (outside any
// lock ordering above the caller) to learn the outcome. While the group
// is poisoned the ticket comes back already failed.
func (gw *GroupWriter) Enqueue(payload []byte) *Ticket {
	t := &Ticket{
		gw:      gw,
		payload: payload,
		promote: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	gw.mu.Lock()
	if gw.poison != nil {
		t.err = fmt.Errorf("wal: group commit poisoned by earlier batch failure: %w", gw.poison)
		close(t.done)
		gw.mu.Unlock()
		return t
	}
	gw.queue = append(gw.queue, t)
	if !gw.leader {
		gw.leader = true
		t.promote <- struct{}{}
	} else if len(gw.queue) >= gw.maxBatch {
		select {
		case gw.full <- struct{}{}:
		default:
		}
	}
	gw.mu.Unlock()
	return t
}

// Wait blocks until the ticket's record is durable (or its batch
// failed) and returns the assigned sequence number. If the ticket is
// promoted to batch leader, Wait performs the flush on the calling
// goroutine — there is no dedicated flusher thread.
func (t *Ticket) Wait() (uint64, error) {
	for {
		select {
		case <-t.promote:
			t.gw.runBatch()
		case <-t.done:
			return t.seq, t.err
		}
	}
}

// Done reports, without blocking, whether the ticket's outcome is set.
func (t *Ticket) Done() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Result returns the ticket's sequence number and error. Only valid
// after Wait returned or Done reported true.
func (t *Ticket) Result() (uint64, error) { return t.seq, t.err }

// runBatch runs one batch on the promoted waiter's goroutine: collect,
// flush, acknowledge, hand off leadership.
func (gw *GroupWriter) runBatch() {
	if gw.maxWait > 0 {
		gw.mu.Lock()
		n := len(gw.queue)
		gw.mu.Unlock()
		if n < gw.maxBatch {
			timer := time.NewTimer(gw.maxWait)
			select {
			case <-timer.C:
			case <-gw.full:
				timer.Stop()
			}
		}
	}

	gw.mu.Lock()
	batch := gw.queue
	gw.queue = nil
	select { // clear a full signal raced in after the take
	case <-gw.full:
	default:
	}
	gw.mu.Unlock()

	payloads := make([][]byte, len(batch))
	for i, bt := range batch {
		payloads[i] = bt.payload
	}
	first, err := gw.w.CommitBatch(payloads)
	if err == nil && gw.AfterSync != nil {
		gw.AfterSync()
	}

	gw.mu.Lock()
	if err != nil {
		gw.poison = err
		gw.stats.Failures++
	} else {
		gw.stats.Batches++
		gw.stats.Records += uint64(len(batch))
		if len(batch) > gw.stats.LargestBatch {
			gw.stats.LargestBatch = len(batch)
		}
		gw.m.batches.Inc()
		gw.m.records.Add(uint64(len(batch)))
		gw.m.batchSize.Observe(int64(len(batch)))
	}
	for i, bt := range batch {
		if err != nil {
			bt.err = err
		} else {
			bt.seq = first + uint64(i)
		}
		close(bt.done)
	}
	switch {
	case gw.poison != nil:
		// Fail everything queued behind the failed batch: it was built
		// on state whose log records will never exist.
		for _, qt := range gw.queue {
			qt.err = fmt.Errorf("wal: group commit poisoned by earlier batch failure: %w", gw.poison)
			close(qt.done)
		}
		gw.queue = nil
		gw.leader = false
	case len(gw.queue) > 0:
		gw.queue[0].promote <- struct{}{}
	default:
		gw.leader = false
	}
	gw.cond.Broadcast()
	gw.mu.Unlock()
}

// Drain blocks until no batch is collecting or flushing and the queue
// is empty; checkpoints use it to quiesce the group before snapshotting.
// Safe to call while holding locks above the group writer, because
// flushes run on waiter goroutines that hold no such locks.
func (gw *GroupWriter) Drain() {
	gw.mu.Lock()
	for gw.leader || len(gw.queue) > 0 {
		gw.cond.Wait()
	}
	gw.mu.Unlock()
}

// Poisoned returns the batch failure currently poisoning the group, or
// nil while it is healthy.
func (gw *GroupWriter) Poisoned() error {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return gw.poison
}

// Heal clears the poison after the caller has reconciled in-memory
// state with the log (published the durable prefix of the staged chain
// and discarded the rest). It fails if the underlying writer itself is
// wedged — then the log's tail content is unknown and no commit can be
// trusted.
func (gw *GroupWriter) Heal() error {
	if err := gw.w.Broken(); err != nil {
		return err
	}
	gw.mu.Lock()
	gw.poison = nil
	gw.mu.Unlock()
	return nil
}

// Stats returns the group writer's counters.
func (gw *GroupWriter) Stats() GroupStats {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return gw.stats
}

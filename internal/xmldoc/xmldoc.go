// Package xmldoc provides the document model shared by the catalog and
// the baseline stores: a light DOM built on encoding/xml, a serializer,
// and canonical comparison helpers.
//
// Grid metadata documents (FGDC/LEAD profiles) are element-structured:
// mixed content is not meaningful, so text is retained only on leaf
// elements and inter-element whitespace is dropped.
package xmldoc

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Attr is one XML attribute.
type Attr struct {
	Name  string
	Value string
}

// Node is one element in a document tree.
type Node struct {
	Tag      string
	Attrs    []Attr
	Text     string // leaf text content; empty for interior nodes
	Children []*Node
	Parent   *Node
}

// NewNode returns a parentless node.
func NewNode(tag string) *Node { return &Node{Tag: tag} }

// NewLeaf returns a leaf node with text content.
func NewLeaf(tag, text string) *Node { return &Node{Tag: tag, Text: text} }

// Append adds children, setting their Parent, and returns n for chaining.
func (n *Node) Append(children ...*Node) *Node {
	for _, c := range children {
		c.Parent = n
		n.Children = append(n.Children, c)
	}
	return n
}

// IsLeaf reports whether the node has no element children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Attr returns the value of the named XML attribute.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Child returns the first child with the given tag, or nil.
func (n *Node) Child(tag string) *Node {
	for _, c := range n.Children {
		if c.Tag == tag {
			return c
		}
	}
	return nil
}

// ChildText returns the text of the first child with the given tag.
func (n *Node) ChildText(tag string) string {
	if c := n.Child(tag); c != nil {
		return c.Text
	}
	return ""
}

// ChildrenByTag returns all children with the given tag, in order.
func (n *Node) ChildrenByTag(tag string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Tag == tag {
			out = append(out, c)
		}
	}
	return out
}

// Walk visits n and its descendants preorder; fn returning false prunes
// the subtree.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// FindAll returns every descendant (including n) with the given tag, in
// document order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(x *Node) bool {
		if x.Tag == tag {
			out = append(out, x)
		}
		return true
	})
	return out
}

// Clone deep-copies the subtree; the copy has a nil Parent.
func (n *Node) Clone() *Node {
	c := &Node{Tag: n.Tag, Text: n.Text}
	if len(n.Attrs) > 0 {
		c.Attrs = append([]Attr(nil), n.Attrs...)
	}
	for _, ch := range n.Children {
		cc := ch.Clone()
		cc.Parent = c
		c.Children = append(c.Children, cc)
	}
	return c
}

// Depth returns the number of ancestors above n.
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Path returns the /-joined tag path from the root to n.
func (n *Node) Path() string {
	var tags []string
	for x := n; x != nil; x = x.Parent {
		tags = append(tags, x.Tag)
	}
	for i, j := 0, len(tags)-1; i < j; i, j = i+1, j-1 {
		tags[i], tags[j] = tags[j], tags[i]
	}
	return "/" + strings.Join(tags, "/")
}

// CountNodes returns the number of elements in the subtree.
func (n *Node) CountNodes() int {
	c := 0
	n.Walk(func(*Node) bool { c++; return true })
	return c
}

// Parse reads one XML document into a node tree. Inter-element whitespace
// is discarded; text inside an element with child elements is rejected
// (grid metadata has no mixed content). Comments and processing
// instructions are skipped.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := NewNode(t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				n.Attrs = append(n.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmldoc: multiple root elements")
				}
				root = n
			} else {
				top := stack[len(stack)-1]
				if top.Text != "" {
					return nil, fmt.Errorf("xmldoc: mixed content under <%s>", top.Tag)
				}
				top.Append(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmldoc: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := strings.TrimSpace(string(t))
			if text == "" {
				continue
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmldoc: text outside root element")
			}
			top := stack[len(stack)-1]
			if len(top.Children) > 0 {
				return nil, fmt.Errorf("xmldoc: mixed content under <%s>", top.Tag)
			}
			if top.Text != "" {
				top.Text += text
			} else {
				top.Text = text
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmldoc: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmldoc: unclosed element <%s>", stack[len(stack)-1].Tag)
	}
	return root, nil
}

// ParseString parses a document held in a string.
func ParseString(s string) (*Node, error) { return Parse(strings.NewReader(s)) }

// WriteTo serializes the subtree. With indent > 0 the output is
// pretty-printed using that many spaces per level.
func (n *Node) WriteTo(w io.Writer, indent int) error {
	bw := &errWriter{w: w}
	n.write(bw, indent, 0)
	return bw.err
}

// String serializes compactly (no indentation).
func (n *Node) String() string {
	var b bytes.Buffer
	_ = n.WriteTo(&b, 0)
	return b.String()
}

// Pretty serializes with two-space indentation.
func (n *Node) Pretty() string {
	var b bytes.Buffer
	_ = n.WriteTo(&b, 2)
	return b.String()
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) WriteString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func (n *Node) write(w *errWriter, indent, depth int) {
	pad := ""
	if indent > 0 {
		pad = strings.Repeat(" ", indent*depth)
	}
	w.WriteString(pad)
	w.WriteString("<")
	w.WriteString(n.Tag)
	for _, a := range n.Attrs {
		w.WriteString(" ")
		w.WriteString(a.Name)
		w.WriteString(`="`)
		w.WriteString(EscapeAttr(a.Value))
		w.WriteString(`"`)
	}
	if n.IsLeaf() && n.Text == "" {
		w.WriteString("/>")
		if indent > 0 {
			w.WriteString("\n")
		}
		return
	}
	w.WriteString(">")
	if n.IsLeaf() {
		w.WriteString(EscapeText(n.Text))
	} else {
		if indent > 0 {
			w.WriteString("\n")
		}
		for _, c := range n.Children {
			c.write(w, indent, depth+1)
		}
		w.WriteString(pad)
	}
	w.WriteString("</")
	w.WriteString(n.Tag)
	w.WriteString(">")
	if indent > 0 {
		w.WriteString("\n")
	}
}

// EscapeText escapes character data.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes attribute values.
func EscapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Equal compares two trees structurally: tags, sorted attributes, leaf
// text, and child order must all match.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Tag != b.Tag || a.Text != b.Text || len(a.Children) != len(b.Children) || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	if !attrsEqual(a.Attrs, b.Attrs) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// EqualUnordered compares trees ignoring sibling order: each child of a
// must match a distinct child of b. Useful when comparing query responses
// whose attribute instances may legally interleave.
func EqualUnordered(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Tag != b.Tag || a.Text != b.Text || len(a.Children) != len(b.Children) || !attrsEqual(a.Attrs, b.Attrs) {
		return false
	}
	used := make([]bool, len(b.Children))
	for _, ca := range a.Children {
		found := false
		for j, cb := range b.Children {
			if !used[j] && EqualUnordered(ca, cb) {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func attrsEqual(a, b []Attr) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]Attr(nil), a...)
	bs := append([]Attr(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	sort.Slice(bs, func(i, j int) bool { return bs[i].Name < bs[j].Name })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the first structural
// difference between two trees, or "" when they are Equal. Used by tests.
func Diff(a, b *Node) string {
	return diff(a, b, "/")
}

func diff(a, b *Node, path string) string {
	switch {
	case a == nil && b == nil:
		return ""
	case a == nil || b == nil:
		return fmt.Sprintf("%s: one side missing", path)
	case a.Tag != b.Tag:
		return fmt.Sprintf("%s: tag %q vs %q", path, a.Tag, b.Tag)
	case a.Text != b.Text:
		return fmt.Sprintf("%s%s: text %q vs %q", path, a.Tag, a.Text, b.Text)
	case !attrsEqual(a.Attrs, b.Attrs):
		return fmt.Sprintf("%s%s: attrs %v vs %v", path, a.Tag, a.Attrs, b.Attrs)
	case len(a.Children) != len(b.Children):
		return fmt.Sprintf("%s%s: %d children vs %d", path, a.Tag, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		if d := diff(a.Children[i], b.Children[i], path+a.Tag+"/"); d != "" {
			return d
		}
	}
	return ""
}

package xmldoc

import (
	"math/rand"
	"strings"
	"testing"
)

const sample = `<root>
  <a x="1" y="two">
    <b>hello</b>
    <b>world</b>
    <c/>
  </a>
  <d>5 &amp; 6 &lt;7&gt;</d>
</root>`

func TestParseBasics(t *testing.T) {
	n, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if n.Tag != "root" || len(n.Children) != 2 {
		t.Fatalf("root = %s with %d children", n.Tag, len(n.Children))
	}
	a := n.Child("a")
	if a == nil || len(a.Attrs) != 2 {
		t.Fatalf("a = %+v", a)
	}
	if v, ok := a.Attr("y"); !ok || v != "two" {
		t.Errorf("attr y = %q, %v", v, ok)
	}
	if _, ok := a.Attr("z"); ok {
		t.Error("missing attr should report !ok")
	}
	bs := a.ChildrenByTag("b")
	if len(bs) != 2 || bs[0].Text != "hello" || bs[1].Text != "world" {
		t.Errorf("b children = %v", bs)
	}
	if !a.Child("c").IsLeaf() || a.IsLeaf() {
		t.Error("IsLeaf wrong")
	}
	if got := n.ChildText("d"); got != "5 & 6 <7>" {
		t.Errorf("entity decoding: %q", got)
	}
	if a.Parent != n || bs[0].Parent != a {
		t.Error("parent links wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"<a><b></a></b>",
		"<a>text<b/></a>", // mixed content
		"<a/><b/>",        // multiple roots
		"<a><b></b>",      // unclosed (encoding/xml reports EOF -> unclosed)
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) should fail", s)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	n, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{n.String(), n.Pretty()} {
		m, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse of %q: %v", out, err)
		}
		if !Equal(n, m) {
			t.Errorf("round trip diff: %s", Diff(n, m))
		}
	}
}

func TestEscaping(t *testing.T) {
	n := NewNode("r")
	n.Attrs = append(n.Attrs, Attr{Name: "a", Value: `<&">`})
	n.Append(NewLeaf("t", "a<b & c>d"))
	out := n.String()
	m, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Attr("a"); v != `<&">` {
		t.Errorf("attr round trip = %q", v)
	}
	if m.ChildText("t") != "a<b & c>d" {
		t.Errorf("text round trip = %q", m.ChildText("t"))
	}
}

func TestWalkFindAllClone(t *testing.T) {
	n, _ := ParseString(sample)
	if got := len(n.FindAll("b")); got != 2 {
		t.Errorf("FindAll(b) = %d", got)
	}
	count := 0
	n.Walk(func(x *Node) bool {
		count++
		return x.Tag != "a" // prune below a
	})
	if count != 3 { // root, a, d
		t.Errorf("pruned walk visited %d", count)
	}
	c := n.Clone()
	if !Equal(n, c) {
		t.Error("clone differs")
	}
	c.Child("a").Child("b").Text = "changed"
	if Equal(n, c) {
		t.Error("clone shares storage with original")
	}
	if c.Parent != nil {
		t.Error("clone should not have a parent")
	}
}

func TestDepthPathCount(t *testing.T) {
	n, _ := ParseString(sample)
	b := n.Child("a").Child("b")
	if b.Depth() != 2 {
		t.Errorf("depth = %d", b.Depth())
	}
	if b.Path() != "/root/a/b" {
		t.Errorf("path = %s", b.Path())
	}
	if n.CountNodes() != 6 {
		t.Errorf("count = %d", n.CountNodes())
	}
}

func TestEqualUnordered(t *testing.T) {
	a, _ := ParseString("<r><x>1</x><x>2</x><y>3</y></r>")
	b, _ := ParseString("<r><y>3</y><x>2</x><x>1</x></r>")
	if Equal(a, b) {
		t.Error("Equal should be order-sensitive")
	}
	if !EqualUnordered(a, b) {
		t.Error("EqualUnordered should match permuted siblings")
	}
	c, _ := ParseString("<r><x>1</x><x>1</x><y>3</y></r>")
	if EqualUnordered(a, c) {
		t.Error("EqualUnordered must respect multiplicity")
	}
}

// randomTree builds a random element tree for the round-trip property
// test.
func randomTree(rng *rand.Rand, depth int) *Node {
	tags := []string{"alpha", "beta", "gamma", "delta"}
	n := NewNode(tags[rng.Intn(len(tags))])
	if rng.Intn(3) == 0 {
		n.Attrs = append(n.Attrs, Attr{Name: "k", Value: randText(rng)})
	}
	if depth <= 0 || rng.Intn(3) == 0 {
		n.Text = randText(rng)
		return n
	}
	for i := 0; i < rng.Intn(4); i++ {
		n.Append(randomTree(rng, depth-1))
	}
	return n
}

func randText(rng *rand.Rand) string {
	chars := "abc<>&\"' xyz"
	ln := rng.Intn(8)
	var sb strings.Builder
	for i := 0; i < ln; i++ {
		sb.WriteByte(chars[rng.Intn(len(chars))])
	}
	// Leading/trailing whitespace is not preserved (grid metadata
	// semantics), so trim for comparison stability.
	return strings.TrimSpace(sb.String())
}

func TestSerializeParsePropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := randomTree(rng, 4)
		m, err := ParseString(n.String())
		if err != nil {
			t.Fatalf("trial %d: %v\nXML: %s", trial, err, n.String())
		}
		if !Equal(n, m) {
			t.Fatalf("trial %d: %s\nXML: %s", trial, Diff(n, m), n.String())
		}
	}
}

package xpath

import (
	"testing"

	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func fig3(t *testing.T) *xmldoc.Node {
	t.Helper()
	n, err := xmldoc.ParseString(xmlschema.Figure3Document)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCompileErrors(t *testing.T) {
	bad := []string{"", "a/b", "/", "/a[b", "/a//", "/a[]"}
	for _, s := range bad {
		if _, err := Compile(s); err == nil {
			t.Errorf("Compile(%q) should fail", s)
		}
	}
	if e := MustCompile("/a/b"); e.String() != "/a/b" {
		t.Errorf("String = %s", e.String())
	}
}

func TestChildSteps(t *testing.T) {
	doc := fig3(t)
	got := MustCompile("/LEADresource/data/idinfo/keywords/theme").Select(doc)
	if len(got) != 2 {
		t.Fatalf("theme count = %d", len(got))
	}
	if got[0].ChildText("themekt") != "CF NetCDF" {
		t.Errorf("first theme = %v", got[0])
	}
	// Wrong root never matches.
	if MustCompile("/other/data").Matches(doc) {
		t.Error("wrong root matched")
	}
}

func TestDescendantAndWildcardSteps(t *testing.T) {
	doc := fig3(t)
	got := MustCompile("//themekey").Select(doc)
	if len(got) != 4 {
		t.Fatalf("//themekey = %d", len(got))
	}
	got = MustCompile("//attr").Select(doc)
	if len(got) != 5 {
		t.Fatalf("//attr = %d (nested attrs should all match)", len(got))
	}
	got = MustCompile("/LEADresource/data/*").Select(doc)
	if len(got) != 2 {
		t.Fatalf("wildcard children = %d", len(got))
	}
	got = MustCompile("//theme/themekey").Select(doc)
	if len(got) != 4 {
		t.Fatalf("//theme/themekey = %d", len(got))
	}
}

func TestPredicates(t *testing.T) {
	doc := fig3(t)
	// Equality on child text.
	got := MustCompile("//attr[attrlabl='dx']").Select(doc)
	if len(got) != 1 || got[0].ChildText("attrv") != "1000.000" {
		t.Fatalf("attr[dx] = %v", got)
	}
	// Numeric comparison: attrv of dx is 1000.000 == 1000.
	if !MustCompile("//attr[attrlabl='dx'][attrv=1000]").Matches(doc) {
		t.Error("numeric equality failed")
	}
	if !MustCompile("//attr[attrv>=500][attrv<=1000]").Matches(doc) {
		t.Error("range predicates failed")
	}
	if MustCompile("//attr[attrv>2000]").Matches(doc) {
		t.Error("attrv>2000 should not match")
	}
	// Existence predicate.
	got = MustCompile("//attr[attr]").Select(doc)
	if len(got) != 1 || got[0].ChildText("attrlabl") != "grid-stretching" {
		t.Fatalf("attr[attr] = %v", got)
	}
	// != predicate.
	got = MustCompile("//attr[attrlabl!='dx'][attrv]").Select(doc)
	if len(got) != 3 { // dzmin, reference-height, dz
		t.Fatalf("attrlabl!='dx' with value = %d", len(got))
	}
	// Self-text predicate.
	got = MustCompile("//themekey[.='air_pressure_at_cloud_base']").Select(doc)
	if len(got) != 1 {
		t.Fatalf("self text predicate = %d", len(got))
	}
}

// TestWorkedPaperQuery evaluates the §4 XQuery FLWOR example as two path
// conditions: grid/ARPS with dx=1000 and grid-stretching/dzmin=100.
func TestWorkedPaperQuery(t *testing.T) {
	doc := fig3(t)
	grid := MustCompile("//detailed/enttyp[enttypl='grid'][enttypds='ARPS']")
	dx := MustCompile("//detailed/attr[attrlabl='dx'][attrdefs='ARPS'][attrv=1000]")
	dzmin := MustCompile("//detailed/attr[attrlabl='grid-stretching'][attrdefs='ARPS']/attr[attrlabl='dzmin'][attrv=100]")
	if !grid.Matches(doc) || !dx.Matches(doc) || !dzmin.Matches(doc) {
		t.Error("the paper's worked query should match Figure 3")
	}
	// A document with dx=2000 must fail the dx condition.
	other := fig3(t)
	for _, a := range MustCompile("//attr[attrlabl='dx']").Select(other) {
		a.Child("attrv").Text = "2000"
	}
	if dx.Matches(other) {
		t.Error("modified document should not match dx=1000")
	}
}

func TestDocumentOrderAndDedup(t *testing.T) {
	doc, _ := xmldoc.ParseString("<r><a><b>1</b></a><a><b>2</b><b>3</b></a></r>")
	got := MustCompile("//b").Select(doc)
	if len(got) != 3 || got[0].Text != "1" || got[2].Text != "3" {
		t.Fatalf("order = %v", got)
	}
	// Nested descendant steps must not duplicate results.
	got = MustCompile("//a//b").Select(doc)
	if len(got) != 3 {
		t.Fatalf("dedup failed: %d", len(got))
	}
}

func TestTextualVsNumericComparison(t *testing.T) {
	doc, _ := xmldoc.ParseString("<r><v>10</v><v>9</v><v>apple</v></r>")
	// Numeric: 9 < 10.
	if got := MustCompile("/r/v[.<9.5]").Select(doc); len(got) != 1 || got[0].Text != "9" {
		t.Errorf("numeric compare = %v", got)
	}
	// Text fallback: "apple" < "banana".
	if got := MustCompile("/r/v[.<'banana']").Select(doc); len(got) != 1 || got[0].Text != "apple" {
		t.Errorf("text compare = %v", got)
	}
}

// Package xpath implements the XPath-lite evaluator used by the
// CLOB-only and native-XML baselines and by the §4 XQuery-equivalence
// tests. It supports the fragment those query workloads need:
//
//	/a/b            child steps from the root
//	//b             descendant-or-self step
//	*               wildcard tag
//	b[c='v']        predicates comparing a child's text (= != < <= > >=)
//	b[c]            predicate testing child existence
//	b[c='v'][d>2]   conjunction by stacking predicates
//	b[.='v']        predicate on the node's own text
//
// Numeric-looking operands compare numerically, mirroring the catalog's
// typed element comparison.
package xpath

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/gridmeta/hybridcat/internal/xmldoc"
)

// Expr is a compiled path expression.
type Expr struct {
	steps []step
	src   string
}

type step struct {
	descendant bool // //tag instead of /tag
	tag        string
	preds      []pred
}

type pred struct {
	childTag string // "." means the node itself
	op       string // "", "=", "!=", "<", "<=", ">", ">="; "" = existence
	value    string
}

// Compile parses a path expression.
func Compile(src string) (*Expr, error) {
	s := strings.TrimSpace(src)
	if s == "" {
		return nil, fmt.Errorf("xpath: empty expression")
	}
	e := &Expr{src: src}
	i := 0
	for i < len(s) {
		if s[i] != '/' {
			return nil, fmt.Errorf("xpath: expected '/' at offset %d in %q", i, src)
		}
		st := step{}
		i++
		if i < len(s) && s[i] == '/' {
			st.descendant = true
			i++
		}
		start := i
		for i < len(s) && s[i] != '/' && s[i] != '[' {
			i++
		}
		st.tag = s[start:i]
		if st.tag == "" {
			return nil, fmt.Errorf("xpath: empty step at offset %d in %q", start, src)
		}
		for i < len(s) && s[i] == '[' {
			end := strings.IndexByte(s[i:], ']')
			if end < 0 {
				return nil, fmt.Errorf("xpath: unclosed predicate in %q", src)
			}
			p, err := parsePred(s[i+1 : i+end])
			if err != nil {
				return nil, err
			}
			st.preds = append(st.preds, p)
			i += end + 1
		}
		e.steps = append(e.steps, st)
	}
	return e, nil
}

// MustCompile is Compile that panics on error; for static expressions.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

func parsePred(s string) (pred, error) {
	s = strings.TrimSpace(s)
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if idx := strings.Index(s, op); idx >= 0 {
			left := strings.TrimSpace(s[:idx])
			right := strings.TrimSpace(s[idx+len(op):])
			val, err := unquote(right)
			if err != nil {
				return pred{}, err
			}
			if left == "" {
				return pred{}, fmt.Errorf("xpath: predicate %q missing operand", s)
			}
			return pred{childTag: left, op: op, value: val}, nil
		}
	}
	if s == "" {
		return pred{}, fmt.Errorf("xpath: empty predicate")
	}
	return pred{childTag: s}, nil
}

func unquote(s string) (string, error) {
	if len(s) >= 2 && (s[0] == '\'' || s[0] == '"') {
		if s[len(s)-1] != s[0] {
			return "", fmt.Errorf("xpath: unterminated literal %q", s)
		}
		return s[1 : len(s)-1], nil
	}
	// Bare numbers are allowed.
	return s, nil
}

// String returns the source expression.
func (e *Expr) String() string { return e.src }

// Select evaluates the expression against a document root, returning
// matching nodes in document order. The first step matches the root
// element itself (as in evaluating /LEADresource/... against a document).
func (e *Expr) Select(root *xmldoc.Node) []*xmldoc.Node {
	if root == nil || len(e.steps) == 0 {
		return nil
	}
	// Seed: the root element, addressed by the first step.
	current := matchStep([]*xmldoc.Node{root}, e.steps[0], true)
	for _, st := range e.steps[1:] {
		current = matchStep(current, st, false)
		if len(current) == 0 {
			return nil
		}
	}
	return current
}

// Matches reports whether any node satisfies the expression.
func (e *Expr) Matches(root *xmldoc.Node) bool { return len(e.Select(root)) > 0 }

// matchStep advances one step. For the seed step the candidates are the
// nodes themselves rather than their children.
func matchStep(nodes []*xmldoc.Node, st step, seed bool) []*xmldoc.Node {
	var out []*xmldoc.Node
	seen := make(map[*xmldoc.Node]bool)
	add := func(n *xmldoc.Node) {
		if !seen[n] && nodeMatches(n, st) {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range nodes {
		switch {
		case st.descendant:
			base := n
			if seed {
				base.Walk(func(x *xmldoc.Node) bool { add(x); return true })
			} else {
				for _, c := range base.Children {
					c.Walk(func(x *xmldoc.Node) bool { add(x); return true })
				}
			}
		case seed:
			add(n)
		default:
			for _, c := range n.Children {
				add(c)
			}
		}
	}
	return out
}

func nodeMatches(n *xmldoc.Node, st step) bool {
	if st.tag != "*" && n.Tag != st.tag {
		return false
	}
	for _, p := range st.preds {
		if !predHolds(n, p) {
			return false
		}
	}
	return true
}

func predHolds(n *xmldoc.Node, p pred) bool {
	if p.childTag == "." {
		return p.op == "" && n.Text != "" || p.op != "" && compareText(n.Text, p.op, p.value)
	}
	kids := n.ChildrenByTag(p.childTag)
	if p.op == "" {
		return len(kids) > 0
	}
	for _, k := range kids {
		if compareText(k.Text, p.op, p.value) {
			return true
		}
	}
	return false
}

// compareText compares numerically when both sides parse as floats and
// textually when neither does. A type mismatch (one numeric side) makes
// ordering comparisons false and =/!= fall back to string comparison,
// mirroring the catalog's typed-element semantics.
func compareText(a, op, b string) bool {
	af, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
	bf, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
	var c int
	switch {
	case errA == nil && errB == nil:
		switch {
		case af < bf:
			c = -1
		case af > bf:
			c = 1
		}
	case errA != nil && errB != nil:
		c = strings.Compare(a, b)
	default:
		// Mixed types: only (in)equality is meaningful.
		switch op {
		case "=":
			return a == b
		case "!=":
			return a != b
		}
		return false
	}
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

package service

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/wal"
)

// Replication endpoints. The primary serves its write-ahead log as the
// replication stream — the same checksummed frames the log file holds,
// so a replica replays them through the identical recovery machinery:
//
//	GET /healthz               {"status":"ok|wedged|replica-lagging",...}
//	GET /wal/stream?from=N     raw WAL frames with seq > N
//	                           (?wait_ms=M long-polls up to M ms for new
//	                           records; 409 when a checkpoint truncated
//	                           records the caller still needs)
//	GET /wal/snapshot          bootstrap snapshot; X-WAL-Seq carries the
//	                           watermark streaming resumes from
//
// A server running as a replica (Replica set) additionally stamps every
// catalog response with X-Staleness-Seq (the replication cursor) and
// answers 503 once it trails the primary beyond MaxLag records.

// ReplicaSource is the read side the service serves from when running
// as a replica: the tailer owns the follower catalog (a mid-run
// re-bootstrap may swap it) and tracks how far behind the primary the
// replica is.
type ReplicaSource interface {
	// Catalog returns the follower catalog currently serving reads.
	Catalog() *catalog.Catalog
	// AppliedSeq is the replica's replication cursor: the last primary
	// log sequence whose effects local readers can see.
	AppliedSeq() uint64
	// PrimarySeq is the last primary log watermark the tailer observed.
	PrimarySeq() uint64
}

// cat returns the catalog handlers serve from: the tailer's current
// follower catalog on a replica, the wrapped primary catalog otherwise.
func (s *Server) cat() *catalog.Catalog {
	if s.Replica != nil {
		return s.Replica.Catalog()
	}
	return s.Cat
}

// replicaLag reports the replica's cursor, the primary watermark, and
// whether the lag between them exceeds the configured bound.
func (s *Server) replicaLag() (applied, primary uint64, over bool) {
	applied, primary = s.Replica.AppliedSeq(), s.Replica.PrimarySeq()
	over = s.MaxLag > 0 && primary > applied && primary-applied > s.MaxLag
	return applied, primary, over
}

// staleness wraps a handler with the replica read contract: every
// response carries X-Staleness-Seq, and reads are refused with 503 once
// the replica lags beyond MaxLag — a client that needs fresher data
// retries against the primary. No-op on a primary.
func (s *Server) staleness(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Replica != nil {
			applied, primary, over := s.replicaLag()
			w.Header().Set("X-Staleness-Seq", strconv.FormatUint(applied, 10))
			if over {
				writeErr(w, http.StatusServiceUnavailable,
					fmt.Errorf("service: replica lagging: applied %d, primary %d", applied, primary))
				return
			}
		}
		h(w, r)
	}
}

// handleHealthz reports readiness: "ok" (200), "wedged" (503) when the
// durability layer refuses mutations, or "replica-lagging" (503) when a
// replica trails the primary beyond its staleness bound. Always
// answers — it is registered outside the staleness middleware — so
// orchestration can distinguish "lagging" from "down".
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{"status": "ok"}
	status := http.StatusOK
	if err := s.cat().Wedged(); err != nil {
		resp["status"] = "wedged"
		resp["error"] = err.Error()
		status = http.StatusServiceUnavailable
	} else if s.Replica != nil {
		applied, primary, over := s.replicaLag()
		resp["applied_seq"] = applied
		resp["primary_seq"] = primary
		resp["max_lag"] = s.MaxLag
		if over {
			resp["status"] = "replica-lagging"
			status = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, status, resp)
}

// maxStreamWait caps the ?wait_ms long poll so an abandoned poll cannot
// pin a handler goroutine indefinitely.
const maxStreamWait = 60 * time.Second

// handleWALStream serves durable log records with sequence > ?from as
// raw WAL frames (wal.EncodeRecord — identical to the on-disk format,
// torn-tolerant and checksummed per record). With ?wait_ms=M and no
// records available it long-polls commit notifications up to M ms; the
// default answers immediately, possibly empty. X-WAL-Last-Seq carries
// the log's last sequence so the caller can measure its lag. 409 means
// a checkpoint truncated records above ?from: the caller must bootstrap
// from /wal/snapshot.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	c := s.cat()
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil && r.URL.Query().Get("from") != "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad from: %w", err))
		return
	}
	wait := time.Duration(queryInt(r, "wait_ms", 0)) * time.Millisecond
	if wait > maxStreamWait {
		wait = maxStreamWait
	}
	deadline := time.Now().Add(wait)
	for {
		// Fetch the notification channel BEFORE reading the log: a commit
		// landing between the read and the wait then still closes the
		// channel we select on, so it cannot be missed.
		notify := c.CommitNotify()
		recs, last, gap, err := c.WALSince(from)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		if gap {
			writeErr(w, http.StatusConflict,
				fmt.Errorf("service: records after %d truncated by checkpoint; bootstrap from /wal/snapshot", from))
			return
		}
		if len(recs) > 0 || time.Now().After(deadline) {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("X-WAL-Last-Seq", strconv.FormatUint(last, 10))
			for _, rec := range recs {
				if _, err := w.Write(wal.EncodeRecord(rec.Seq, rec.Payload)); err != nil {
					return // client went away; the tailer resumes from its cursor
				}
			}
			return
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-notify:
			timer.Stop()
		case <-r.Context().Done():
			timer.Stop()
			return
		case <-timer.C:
		}
	}
}

// handleWALSnapshot serves a bootstrap snapshot for replicas that hit a
// stream gap. The X-WAL-Seq header is the watermark the snapshot
// contains; the replica resumes /wal/stream?from= there.
func (s *Server) handleWALSnapshot(w http.ResponseWriter, _ *http.Request) {
	// Buffered so a mid-save failure yields a clean error response
	// instead of a torn 200 body.
	var buf bytes.Buffer
	seq, err := s.cat().ReplicationSnapshot(&buf)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-WAL-Seq", strconv.FormatUint(seq, 10))
	_, _ = w.Write(buf.Bytes())
}

package service

import (
	"net/http"
	"strings"
	"testing"
)

func TestPublishEndpointsAndScopedVisibility(t *testing.T) {
	ts, cat := newTestServer(t)
	if _, err := cat.IngestXML("alice", minimalDoc("private-data")); err != nil {
		t.Fatal(err)
	}

	query := `{"owner":"bob","attrs":[{"name":"theme","elems":[{"name":"themekey","op":"=","value":"private-data"}]}]}`

	// Bob cannot see alice's unpublished object.
	code, body := post(t, ts.URL+"/query", "application/json", query)
	if code != http.StatusOK || !strings.Contains(body, "[]") {
		t.Fatalf("unpublished visible: %d %s", code, body)
	}
	// Publish over HTTP.
	code, body = post(t, ts.URL+"/objects/1/publish", "application/json", "")
	if code != http.StatusOK {
		t.Fatalf("publish: %d %s", code, body)
	}
	code, body = post(t, ts.URL+"/query", "application/json", query)
	if code != http.StatusOK || !strings.Contains(body, "[1]") {
		t.Fatalf("published not visible: %d %s", code, body)
	}
	// Unpublish reverses.
	if code, _ := post(t, ts.URL+"/objects/1/unpublish", "application/json", ""); code != http.StatusOK {
		t.Fatalf("unpublish: %d", code)
	}
	code, body = post(t, ts.URL+"/query", "application/json", query)
	if !strings.Contains(body, "[]") {
		t.Fatalf("unpublish had no effect: %d %s", code, body)
	}
	// Errors.
	if code, _ := post(t, ts.URL+"/objects/99/publish", "application/json", ""); code != http.StatusNotFound {
		t.Errorf("missing object publish = %d", code)
	}
	if code, _ := post(t, ts.URL+"/objects/abc/publish", "application/json", ""); code != http.StatusBadRequest {
		t.Errorf("bad id publish = %d", code)
	}
}

func TestDefsEndpointAndSearchPagination(t *testing.T) {
	ts, cat := newTestServer(t)
	if err := cat.LoadDefinitionsJSON([]byte(`[
	  {"kind":"attribute","name":"grid","source":"ARPS"},
	  {"kind":"element","name":"dx","source":"ARPS","parent":"grid","type":"float"}
	]`)); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, ts.URL+"/defs")
	if code != http.StatusOK || !strings.Contains(body, `"grid"`) || !strings.Contains(body, `"dx"`) {
		t.Fatalf("defs: %d %s", code, body)
	}
	for i := 0; i < 5; i++ {
		if _, err := cat.IngestXML("u", minimalDoc("k")); err != nil {
			t.Fatal(err)
		}
	}
	query := `{"attrs":[{"name":"theme","elems":[{"name":"themekey","op":"=","value":"k"}]}]}`
	code, body = post(t, ts.URL+"/search?offset=1&limit=2", "application/json", query)
	if code != http.StatusOK || !strings.Contains(body, `"total":5`) {
		t.Fatalf("paged search: %d %s", code, body)
	}
	if got := strings.Count(body, `"xml"`); got != 2 {
		t.Fatalf("page size = %d results: %s", got, body)
	}
}

func minimalDoc(key string) string {
	return `<LEADresource><resourceID>` + key + `</resourceID><data><idinfo><keywords>
	  <theme><themekt>CF</themekt><themekey>` + key + `</themekey></theme>
	</keywords></idinfo></data></LEADresource>`
}

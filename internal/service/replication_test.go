package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/wal"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// newDurableServer serves a durable catalog (group commit on) from an
// in-memory filesystem, for the replication endpoint tests.
func newDurableServer(t *testing.T, fs faultio.FS, every int) (*httptest.Server, *catalog.Catalog) {
	t.Helper()
	cat, err := catalog.OpenDurable(xmlschema.MustLEAD(), catalog.Options{}, catalog.DurabilityOptions{
		FS: fs, WALPath: "svc.wal", CheckpointEvery: every,
		GroupCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(cat).Handler())
	t.Cleanup(ts.Close)
	return ts, cat
}

func TestHealthzOK(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
	var resp map[string]any
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["status"] != "ok" {
		t.Fatalf("status = %v, want ok", resp["status"])
	}
}

func TestHealthzWedged(t *testing.T) {
	// A crash-mode fault wedges the durability layer: the first sync
	// fails, every retry fails, heal cannot recover the writer.
	faulty := faultio.NewFaulty(faultio.NewMemFS(), faultio.Fault{
		Op: faultio.OpSync, N: 3, Mode: faultio.CrashOp,
	})
	ts, cat := newDurableServer(t, faulty, 1000)
	for i := 0; i < 5; i++ {
		cat.CreateCollection(fmt.Sprintf("c%d", i), "ops", 0)
	}
	if cat.Wedged() == nil {
		t.Fatal("catalog did not wedge; the test premise is gone")
	}
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz on wedged catalog: %d %s", code, body)
	}
	var resp map[string]any
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["status"] != "wedged" || resp["error"] == "" {
		t.Fatalf("resp = %v, want status=wedged with error", resp)
	}
}

// fakeReplica satisfies ReplicaSource with a pinned lag, so the
// staleness contract is testable without a live tailer.
type fakeReplica struct {
	cat              *catalog.Catalog
	applied, primary uint64
}

func (f *fakeReplica) Catalog() *catalog.Catalog { return f.cat }
func (f *fakeReplica) AppliedSeq() uint64        { return f.applied }
func (f *fakeReplica) PrimarySeq() uint64        { return f.primary }

func newReplicaServer(t *testing.T, applied, primary, maxLag uint64) (*httptest.Server, *fakeReplica) {
	t.Helper()
	cat, err := catalog.OpenFollower(xmlschema.MustLEAD(), catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fr := &fakeReplica{cat: cat, applied: applied, primary: primary}
	srv := New(nil)
	srv.Replica = fr
	srv.MaxLag = maxLag
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, fr
}

func TestReplicaStalenessHeaderAndLagRefusal(t *testing.T) {
	// Within the bound: reads succeed and carry the cursor.
	ts, _ := newReplicaServer(t, 7, 9, 5)
	resp, err := http.Get(ts.URL + "/objects")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read within lag bound: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Staleness-Seq"); got != "7" {
		t.Fatalf("X-Staleness-Seq = %q, want 7", got)
	}

	// Beyond the bound: 503, header still present.
	ts2, _ := newReplicaServer(t, 1, 9, 5)
	resp, err = http.Get(ts2.URL + "/objects")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read beyond lag bound: %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Staleness-Seq"); got != "1" {
		t.Fatalf("X-Staleness-Seq = %q, want 1", got)
	}

	// healthz names the condition — and, being outside the staleness
	// middleware, still answers 503-with-body rather than being refused.
	code, body := get(t, ts2.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz: %d %s", code, body)
	}
	var hr map[string]any
	if err := json.Unmarshal([]byte(body), &hr); err != nil {
		t.Fatal(err)
	}
	if hr["status"] != "replica-lagging" {
		t.Fatalf("status = %v, want replica-lagging", hr["status"])
	}
	if hr["applied_seq"].(float64) != 1 || hr["primary_seq"].(float64) != 9 {
		t.Fatalf("healthz seqs = %v", hr)
	}
}

func TestReplicaMutationRefused(t *testing.T) {
	ts, _ := newReplicaServer(t, 0, 0, 0)
	code, body := post(t, ts.URL+"/ingest?owner=u", "application/xml", xmlschema.Figure3Document)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("ingest on replica: %d %s, want 503", code, body)
	}
}

func TestWALStreamRoundTrip(t *testing.T) {
	ts, cat := newDurableServer(t, faultio.NewMemFS(), 1000)
	for i := 0; i < 4; i++ {
		if _, err := cat.CreateCollection(fmt.Sprintf("c%d", i), "ops", 0); err != nil {
			t.Fatal(err)
		}
	}
	want, last, gap, err := cat.WALSince(0)
	if err != nil || gap || len(want) != 4 {
		t.Fatalf("WALSince: %d recs gap=%v err=%v", len(want), gap, err)
	}

	resp, err := http.Get(ts.URL + "/wal/stream?from=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-WAL-Last-Seq"); got != fmt.Sprint(last) {
		t.Fatalf("X-WAL-Last-Seq = %q, want %d", got, last)
	}
	recs, err := wal.DecodeFrames(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(want))
	}
	for i := range recs {
		if recs[i].Seq != want[i].Seq || string(recs[i].Payload) != string(want[i].Payload) {
			t.Fatalf("record %d diverges from the log", i)
		}
	}

	// from=last: nothing newer, empty 200.
	resp, err = http.Get(fmt.Sprintf("%s/wal/stream?from=%d", ts.URL, last))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("stream from tip: %d, %d bytes; want empty 200", resp.StatusCode, len(body))
	}
}

func TestWALStreamLongPollWakesOnCommit(t *testing.T) {
	ts, cat := newDurableServer(t, faultio.NewMemFS(), 1000)
	if _, err := cat.CreateCollection("seed", "ops", 0); err != nil {
		t.Fatal(err)
	}
	from := cat.PublishedSeq()

	type result struct {
		recs []wal.Record
		took time.Duration
		err  error
	}
	done := make(chan result, 1)
	go func() {
		start := time.Now()
		resp, err := http.Get(fmt.Sprintf("%s/wal/stream?from=%d&wait_ms=10000", ts.URL, from))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		recs, err := wal.DecodeFrames(body)
		done <- result{recs: recs, took: time.Since(start), err: err}
	}()

	time.Sleep(50 * time.Millisecond) // let the poll park
	if _, err := cat.CreateCollection("wake", "ops", 0); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if len(res.recs) != 1 || res.recs[0].Seq != from+1 {
			t.Fatalf("long poll returned %d records, want the one commit", len(res.recs))
		}
		if res.took >= 10*time.Second {
			t.Fatalf("long poll slept the full window (%v); the commit did not wake it", res.took)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll never returned after the commit")
	}
}

func TestWALStreamGapAndBadFrom(t *testing.T) {
	ts, cat := newDurableServer(t, faultio.NewMemFS(), 2)
	for i := 0; i < 6; i++ {
		if _, err := cat.CreateCollection(fmt.Sprintf("c%d", i), "ops", 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, ts.URL+"/wal/stream?from=0")
	if code != http.StatusConflict {
		t.Fatalf("stream across checkpoint truncation: %d %s, want 409", code, body)
	}
	code, _ = get(t, ts.URL+"/wal/stream?from=banana")
	if code != http.StatusBadRequest {
		t.Fatalf("stream with bad from: %d, want 400", code)
	}
}

func TestWALSnapshotBootstrapsFollower(t *testing.T) {
	ts, cat := newDurableServer(t, faultio.NewMemFS(), 1000)
	if _, err := cat.RegisterAttr("grid", "ARPS", 0, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.IngestXML("scientist", xmlschema.Figure3Document); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/wal/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-WAL-Seq"); got != fmt.Sprint(cat.PublishedSeq()) {
		t.Fatalf("X-WAL-Seq = %q, want %d", got, cat.PublishedSeq())
	}
	follower, err := catalog.LoadFollower(xmlschema.MustLEAD(), catalog.Options{}, resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if follower.AppliedSeq() != cat.PublishedSeq() {
		t.Fatalf("follower cursor %d, want %d", follower.AppliedSeq(), cat.PublishedSeq())
	}
	if got := len(follower.Objects()); got != 1 {
		t.Fatalf("follower has %d objects, want 1", got)
	}
}

package service

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"github.com/gridmeta/hybridcat/internal/obs"
)

// The debug and observability surface:
//
//	GET /metrics          Prometheus 0.0.4 text exposition of the
//	                      catalog's metrics registry (?format=json for
//	                      the JSON rendering); 404 when metrics are off.
//	GET /debug/tracez     the slowest recent query traces with their
//	                      Figure-4 stage timings (?reset=1 clears the
//	                      ring after snapshotting); 404 when tracing is
//	                      off.
//	GET /debug/cachez     read-cache counters + generations.
//	GET /debug/durabilityz  WAL/checkpoint/recovery counters (zeroes
//	                      when the catalog is not durable).
//
// Every JSON debug endpoint goes through debugHandler so they share
// the standard writeJSON/writeErr content-type and error shape instead
// of hand-rolling responses.

// debugHandler adapts a snapshot function into the service's standard
// JSON response path: the returned value is encoded with writeJSON on
// success, and an error becomes the usual {"error": ...} body with 404
// (debug snapshots fail only when the underlying subsystem is off).
func debugHandler(fn func(r *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		v, err := fn(r)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	}
}

// handleMetrics serves the metrics registry. The default rendering is
// the Prometheus text exposition format so a stock scraper (or curl)
// can read it; ?format=json returns the structured State instead.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.cat().Metrics()
	if reg == nil {
		writeErr(w, http.StatusNotFound, errors.New("service: metrics disabled"))
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WriteProm(w)
}

// handleTracez snapshots the slow-query trace ring, slowest first.
func (s *Server) handleTracez(r *http.Request) (any, error) {
	ring := s.cat().Traces()
	if ring == nil {
		return nil, errors.New("service: query tracing disabled")
	}
	out := map[string]any{
		"enabled": true,
		"offered": ring.Offered(),
		"traces":  ring.Slowest(),
	}
	if r.URL.Query().Get("reset") == "1" {
		ring.Reset()
	}
	return out, nil
}

// statusWriter captures the response status for the request counter.
// Handlers that never call WriteHeader implicitly return 200.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-endpoint metrics: a latency
// histogram http_request_nanos{endpoint} (created once, here) and a
// request counter http_requests_total{endpoint,code} resolved per
// request once the status code is known. With metrics off the handler
// is returned untouched — zero overhead.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reg := s.cat().Metrics()
	if reg == nil {
		return h
	}
	lat := reg.Histogram("http_request_nanos", obs.L("endpoint", endpoint))
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		lat.Observe(time.Since(start).Nanoseconds())
		reg.Counter("http_requests_total",
			obs.L("endpoint", endpoint),
			obs.L("code", strconv.Itoa(sw.code))).Inc()
	}
}

// route registers an instrumented handler behind the replica staleness
// middleware; the mux pattern doubles as the endpoint label, so the
// label set is fixed at registration time.
func (s *Server) route(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	mux.HandleFunc(pattern, s.instrument(pattern, s.staleness(h)))
}

// Package service exposes a catalog as an HTTP/XML grid service: ingest
// schema-based metadata documents, register dynamic definitions, run
// attribute queries (JSON wire format), and fetch reconstructed XML.
// It stands in for the grid-service transport of the myLEAD server.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/ontology"
)

// Server wraps a catalog with HTTP handlers.
type Server struct {
	Cat *catalog.Catalog
	ont *ontology.Ontology
	// Replica, when non-nil, marks this server a read replica: handlers
	// serve from Replica.Catalog(), stamp X-Staleness-Seq, and refuse
	// reads once the replica lags past MaxLag (see replication.go).
	Replica ReplicaSource
	// MaxLag is the replica staleness bound in log records; 0 disables
	// the lag check (responses still carry X-Staleness-Seq).
	MaxLag uint64
}

// New wraps a catalog.
func New(cat *catalog.Catalog) *Server { return &Server{Cat: cat} }

// Handler returns the service mux:
//
//	POST /ingest?owner=U        XML document body -> {"id": N}
//	POST /query                 query JSON -> {"ids": [...]}
//	POST /search                query JSON -> {"results": [{"id", "xml"}]}
//	GET  /objects               -> [{"id","name","owner","created"}]
//	GET  /fetch?id=N            -> XML document
//	GET  /schema                -> text ordering table (Figure 2)
//	POST /define/attr           {"name","source","parent_id","owner"} -> definition
//	POST /define/elem           {"name","source","attr_id","type","owner"} -> definition
//	GET  /metrics               -> metrics registry (Prometheus text; ?format=json)
//	GET  /healthz               -> readiness: ok | wedged | replica-lagging
//	GET  /wal/stream?from=N     -> replication stream (raw WAL frames)
//	GET  /wal/snapshot          -> replica bootstrap snapshot
//	GET  /debug/tracez          -> slowest query traces with stage timings
//	GET  /debug/cachez          -> read-cache counters + generations
//	GET  /debug/durabilityz     -> WAL/checkpoint/recovery counters
//
// When the catalog has a metrics registry, every route is additionally
// wrapped with per-endpoint request counters and latency histograms
// (see instrument in debug.go).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.route(mux, "POST /ingest", s.handleIngest)
	s.route(mux, "POST /query", s.handleQuery)
	s.route(mux, "POST /search", s.handleSearch)
	s.route(mux, "GET /objects", s.handleObjects)
	s.route(mux, "GET /fetch", s.handleFetch)
	s.route(mux, "GET /schema", s.handleSchema)
	s.route(mux, "POST /define/attr", s.handleDefineAttr)
	s.route(mux, "POST /define/elem", s.handleDefineElem)
	s.route(mux, "POST /objects/{id}/publish", s.handlePublish(true))
	s.route(mux, "POST /objects/{id}/unpublish", s.handlePublish(false))
	s.route(mux, "GET /defs", s.handleDefs)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// healthz and the replication endpoints sit outside the staleness
	// middleware: a lagging replica must still answer health checks, and
	// the stream/snapshot endpoints are the primary's own surface.
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.route(mux, "GET /wal/stream", s.handleWALStream)
	s.route(mux, "GET /wal/snapshot", s.handleWALSnapshot)
	mux.HandleFunc("GET /debug/tracez", debugHandler(s.handleTracez))
	mux.HandleFunc("GET /debug/cachez", debugHandler(func(*http.Request) (any, error) {
		return s.cat().CacheStats(), nil
	}))
	mux.HandleFunc("GET /debug/durabilityz", debugHandler(func(*http.Request) (any, error) {
		return s.cat().DurabilityStats(), nil
	}))
	s.registerCollectionRoutes(mux)
	return mux
}

// handlePublish flips an object's published flag (§1 privacy: queries
// from other users only see published objects).
func (s *Server) handlePublish(published bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.cat().SetPublished(id, published); err != nil {
			writeErr(w, mutationStatus(err, http.StatusNotFound), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"published": published})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// Responses embed reconstructed XML documents; the default HTML-safe
	// escaping would mangle every angle bracket into its unicode-escape
	// form, so turn it off.
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// Request-body ceilings: an ingest document may be large; queries and
// definition requests are small. Oversized bodies get 413 instead of a
// silent truncation.
const (
	maxIngestBody = 16 << 20
	maxJSONBody   = 1 << 20
)

// bodyStatus maps a body-read error to a status: hitting the
// MaxBytesReader ceiling is 413, everything else 400.
func bodyStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// mutationStatus maps a failed catalog mutation to a status: a
// durability failure (the write-ahead record could not reach stable
// storage; state was rolled back) is a server-side 500; a mutation on a
// read-only replica is 503 so the client retries against the primary;
// anything else keeps the handler's validation status.
func mutationStatus(err error, fallback int) int {
	if errors.Is(err, catalog.ErrDurability) {
		return http.StatusInternalServerError
	}
	if errors.Is(err, catalog.ErrReadOnlyReplica) {
		return http.StatusServiceUnavailable
	}
	return fallback
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if err != nil {
		writeErr(w, bodyStatus(err), err)
		return
	}
	id, err := s.cat().IngestXML(r.URL.Query().Get("owner"), string(body))
	if err != nil {
		writeErr(w, mutationStatus(err, http.StatusUnprocessableEntity), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int64{"id": id})
}

func (s *Server) readQuery(w http.ResponseWriter, r *http.Request) (*catalog.Query, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxJSONBody))
	if err != nil {
		writeErr(w, bodyStatus(err), err)
		return nil, false
	}
	q, err := catalog.ParseQueryJSON(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, false
	}
	return q, true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, ok := s.readQuery(w, r)
	if !ok {
		return
	}
	if q.Rank != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("service: ranked queries use POST /search"))
		return
	}
	q = s.maybeExpand(r, q)
	ids, err := s.evaluateScoped(r, q)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, catalog.ErrUnknownDefinition) {
			status = http.StatusBadRequest
		}
		writeErr(w, status, err)
		return
	}
	if ids == nil {
		ids = []int64{}
	}
	writeJSON(w, http.StatusOK, map[string][]int64{"ids": ids})
}

// handleDefs dumps the dynamic definitions in the DefJSON wire format.
func (s *Server) handleDefs(w http.ResponseWriter, _ *http.Request) {
	data, err := s.cat().DumpDefinitionsJSON()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// handleSearch runs the query and returns reconstructed documents;
// ?offset and ?limit paginate, and the response carries the total
// match count. A structural query pages over the ascending ID order; a
// query with a "rank" clause returns BM25 top-k results in score order,
// each carrying its score (see handleSearchRanked).
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q, ok := s.readQuery(w, r)
	if !ok {
		return
	}
	q = s.maybeExpand(r, q)
	if q.Rank != nil {
		s.handleSearchRanked(w, r, q)
		return
	}
	ids, err := s.evaluateScoped(r, q)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, catalog.ErrUnknownDefinition) {
			status = http.StatusBadRequest
		}
		writeErr(w, status, err)
		return
	}
	total := len(ids)
	if off := queryInt(r, "offset", 0); off > 0 {
		if off >= len(ids) {
			ids = nil
		} else {
			ids = ids[off:]
		}
	}
	if lim := queryInt(r, "limit", 0); lim > 0 && lim < len(ids) {
		ids = ids[:lim]
	}
	resp, err := s.cat().BuildResponse(ids)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	type result struct {
		ID  int64  `json:"id"`
		XML string `json:"xml"`
	}
	results := make([]result, 0, len(resp))
	for _, rr := range resp {
		results = append(results, result{ID: rr.ObjectID, XML: rr.XML})
	}
	writeJSON(w, http.StatusOK, map[string]any{"total": total, "results": results})
}

// handleSearchRanked is the ranked arm of POST /search: BM25 top-k
// composed with the query's structural criteria, results in descending
// score order with ?offset/?limit slicing the ranked list.
func (s *Server) handleSearchRanked(w http.ResponseWriter, r *http.Request, q *catalog.Query) {
	if r.URL.Query().Get("collection") != "" {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("service: ranked search does not support ?collection"))
		return
	}
	resp, err := s.cat().SearchRanked(r.Context(), q)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, catalog.ErrUnknownDefinition) || errors.Is(err, catalog.ErrTextIndexDisabled) {
			status = http.StatusBadRequest
		}
		writeErr(w, status, err)
		return
	}
	total := len(resp)
	if off := queryInt(r, "offset", 0); off > 0 {
		if off >= len(resp) {
			resp = nil
		} else {
			resp = resp[off:]
		}
	}
	if lim := queryInt(r, "limit", 0); lim > 0 && lim < len(resp) {
		resp = resp[:lim]
	}
	type result struct {
		ID    int64   `json:"id"`
		Score float64 `json:"score"`
		XML   string  `json:"xml"`
	}
	results := make([]result, 0, len(resp))
	for _, rr := range resp {
		results = append(results, result{ID: rr.ObjectID, Score: rr.Score, XML: rr.XML})
	}
	writeJSON(w, http.StatusOK, map[string]any{"total": total, "results": results})
}

func queryInt(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return def
	}
	return n
}

func (s *Server) handleObjects(w http.ResponseWriter, _ *http.Request) {
	type obj struct {
		ID      int64  `json:"id"`
		Name    string `json:"name"`
		Owner   string `json:"owner"`
		Created string `json:"created"`
	}
	objs := s.cat().Objects()
	out := make([]obj, 0, len(objs))
	for _, o := range objs {
		out = append(out, obj{o.ID, o.Name, o.Owner, o.Created})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad id: %w", err))
		return
	}
	doc, err := s.cat().FetchDocument(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	_ = doc.WriteTo(w, 2)
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, row := range s.cat().Schema.OrderingTable() {
		fmt.Fprintln(w, row)
	}
}

type defineAttrReq struct {
	Name     string `json:"name"`
	Source   string `json:"source"`
	ParentID int64  `json:"parent_id"`
	Owner    string `json:"owner"`
}

func (s *Server) handleDefineAttr(w http.ResponseWriter, r *http.Request) {
	var req defineAttrReq
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(&req); err != nil {
		writeErr(w, bodyStatus(err), err)
		return
	}
	def, err := s.cat().RegisterAttr(req.Name, req.Source, req.ParentID, req.Owner)
	if err != nil {
		writeErr(w, mutationStatus(err, http.StatusUnprocessableEntity), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int64{"attr_id": def.ID})
}

type defineElemReq struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	AttrID int64  `json:"attr_id"`
	Type   string `json:"type"`
	Owner  string `json:"owner"`
}

func (s *Server) handleDefineElem(w http.ResponseWriter, r *http.Request) {
	var req defineElemReq
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(&req); err != nil {
		writeErr(w, bodyStatus(err), err)
		return
	}
	dt, err := core.ParseDataType(req.Type)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	def, err := s.cat().RegisterElem(req.Name, req.Source, req.AttrID, dt, req.Owner)
	if err != nil {
		writeErr(w, mutationStatus(err, http.StatusUnprocessableEntity), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int64{"elem_id": def.ID})
}

package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/shard"
)

// ShardedServer exposes a sharded cluster over the same wire surface as
// the single-catalog Server: object IDs in requests and responses are
// the cluster's global IDs, ingest routes to the owner's shard, and
// queries follow the router's semantics (owner-scoped reads route,
// superuser reads fan out; ?fanout=1 forces the fan-out read, which
// reproduces single-catalog visibility for owner queries over published
// data). Replication endpoints are per shard, not cluster-level — a
// sharded deployment replicates shard directories, not the router.
type ShardedServer struct {
	Cluster *shard.Cluster
}

// NewSharded wraps a cluster.
func NewSharded(cl *shard.Cluster) *ShardedServer { return &ShardedServer{Cluster: cl} }

// Handler returns the sharded service mux:
//
//	POST /ingest?owner=U         XML document body -> {"id": GID}
//	POST /query[?fanout=1]       query JSON -> {"ids": [...]}
//	POST /search[?fanout=1&offset=N&limit=N] -> {"total", "results"}
//	GET  /objects                -> [{"id","name","owner","created"}]
//	GET  /fetch?id=GID           -> XML document
//	POST /define/attr            broadcast to every shard
//	POST /define/elem            broadcast to every shard
//	POST /objects/{id}/publish   and /unpublish
//	GET  /metrics                -> shared registry (all shards + router)
//	GET  /healthz                -> ok | wedged (any shard)
//	GET  /shardz                 -> per-shard dir/objects/epoch/watermark
//	POST /rebalance?shard=N&dir=D  move shard N to directory D, live
func (s *ShardedServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /search", s.handleSearch)
	mux.HandleFunc("GET /objects", s.handleObjects)
	mux.HandleFunc("GET /fetch", s.handleFetch)
	mux.HandleFunc("POST /define/attr", s.handleDefineAttr)
	mux.HandleFunc("POST /define/elem", s.handleDefineElem)
	mux.HandleFunc("POST /objects/{id}/publish", s.handlePublish(true))
	mux.HandleFunc("POST /objects/{id}/unpublish", s.handlePublish(false))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /shardz", s.handleShardz)
	mux.HandleFunc("POST /rebalance", s.handleRebalance)
	return mux
}

func (s *ShardedServer) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if err != nil {
		writeErr(w, bodyStatus(err), err)
		return
	}
	gid, err := s.Cluster.IngestXML(r.URL.Query().Get("owner"), string(body))
	if err != nil {
		writeErr(w, mutationStatus(err, http.StatusUnprocessableEntity), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int64{"id": gid})
}

// readClusterQuery parses the query body, honoring ?fanout=1.
func (s *ShardedServer) readClusterQuery(w http.ResponseWriter, r *http.Request) (*catalog.Query, bool, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxJSONBody))
	if err != nil {
		writeErr(w, bodyStatus(err), err)
		return nil, false, false
	}
	q, err := catalog.ParseQueryJSON(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, false, false
	}
	return q, r.URL.Query().Get("fanout") == "1", true
}

// decodeJSONBody decodes a size-capped JSON request body into v.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, v any) error {
	return json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(v)
}

func queryStatus(err error) int {
	if errors.Is(err, catalog.ErrUnknownDefinition) || errors.Is(err, catalog.ErrTextIndexDisabled) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *ShardedServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, fanout, ok := s.readClusterQuery(w, r)
	if !ok {
		return
	}
	if q.Rank != nil {
		writeErr(w, http.StatusBadRequest, errors.New("service: ranked queries use POST /search"))
		return
	}
	var ids []int64
	var err error
	if fanout {
		ids, err = s.Cluster.EvaluateAll(q)
	} else {
		ids, err = s.Cluster.Evaluate(q)
	}
	if err != nil {
		writeErr(w, queryStatus(err), err)
		return
	}
	if ids == nil {
		ids = []int64{}
	}
	writeJSON(w, http.StatusOK, map[string][]int64{"ids": ids})
}

func (s *ShardedServer) handleSearch(w http.ResponseWriter, r *http.Request) {
	q, fanout, ok := s.readClusterQuery(w, r)
	if !ok {
		return
	}
	if q.Rank != nil {
		s.handleSearchRanked(w, r, q, fanout)
		return
	}
	resp, total, err := s.searchPage(q, r, fanout)
	if err != nil {
		writeErr(w, queryStatus(err), err)
		return
	}
	type result struct {
		ID  int64  `json:"id"`
		XML string `json:"xml"`
	}
	results := make([]result, 0, len(resp))
	for _, rr := range resp {
		results = append(results, result{ID: rr.ObjectID, XML: rr.XML})
	}
	writeJSON(w, http.StatusOK, map[string]any{"total": total, "results": results})
}

// handleSearchRanked serves a BM25 ranked /search over the cluster:
// owner-scoped queries route, ?fanout=1 (or a superuser query) runs the
// two-phase global-statistics scatter with a score-ordered merge.
func (s *ShardedServer) handleSearchRanked(w http.ResponseWriter, r *http.Request, q *catalog.Query, fanout bool) {
	resp, err := s.Cluster.SearchRanked(q, fanout)
	if err != nil {
		writeErr(w, queryStatus(err), err)
		return
	}
	total := len(resp)
	offset, limit := queryInt(r, "offset", 0), queryInt(r, "limit", 0)
	if offset > 0 {
		if offset >= len(resp) {
			resp = nil
		} else {
			resp = resp[offset:]
		}
	}
	if limit > 0 && limit < len(resp) {
		resp = resp[:limit]
	}
	type result struct {
		ID    int64   `json:"id"`
		Score float64 `json:"score"`
		XML   string  `json:"xml"`
	}
	results := make([]result, 0, len(resp))
	for _, rr := range resp {
		results = append(results, result{ID: rr.ObjectID, Score: rr.Score, XML: rr.XML})
	}
	writeJSON(w, http.StatusOK, map[string]any{"total": total, "results": results})
}

func (s *ShardedServer) searchPage(q *catalog.Query, r *http.Request, fanout bool) ([]catalog.Response, int, error) {
	offset, limit := queryInt(r, "offset", 0), queryInt(r, "limit", 0)
	if fanout {
		resp, err := s.Cluster.SearchAll(q)
		if err != nil {
			return nil, 0, err
		}
		total := len(resp)
		if offset > 0 {
			if offset >= len(resp) {
				return nil, total, nil
			}
			resp = resp[offset:]
		}
		if limit > 0 && limit < len(resp) {
			resp = resp[:limit]
		}
		return resp, total, nil
	}
	return s.Cluster.SearchPage(q, offset, limit)
}

func (s *ShardedServer) handleObjects(w http.ResponseWriter, _ *http.Request) {
	type obj struct {
		ID      int64  `json:"id"`
		Name    string `json:"name"`
		Owner   string `json:"owner"`
		Created string `json:"created"`
	}
	objs := s.Cluster.Objects()
	out := make([]obj, 0, len(objs))
	for _, o := range objs {
		out = append(out, obj{o.ID, o.Name, o.Owner, o.Created})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *ShardedServer) handleFetch(w http.ResponseWriter, r *http.Request) {
	gid, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	doc, err := s.Cluster.FetchDocument(gid)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	_ = doc.WriteTo(w, 2)
}

func (s *ShardedServer) handleDefineAttr(w http.ResponseWriter, r *http.Request) {
	var req defineAttrReq
	if err := decodeJSONBody(w, r, &req); err != nil {
		writeErr(w, bodyStatus(err), err)
		return
	}
	def, err := s.Cluster.RegisterAttr(req.Name, req.Source, req.ParentID, req.Owner)
	if err != nil {
		writeErr(w, mutationStatus(err, http.StatusUnprocessableEntity), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int64{"attr_id": def.ID})
}

func (s *ShardedServer) handleDefineElem(w http.ResponseWriter, r *http.Request) {
	var req defineElemReq
	if err := decodeJSONBody(w, r, &req); err != nil {
		writeErr(w, bodyStatus(err), err)
		return
	}
	dt, err := core.ParseDataType(req.Type)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	def, err := s.Cluster.RegisterElem(req.Name, req.Source, req.AttrID, dt, req.Owner)
	if err != nil {
		writeErr(w, mutationStatus(err, http.StatusUnprocessableEntity), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int64{"elem_id": def.ID})
}

func (s *ShardedServer) handlePublish(published bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		gid, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.Cluster.SetPublished(gid, published); err != nil {
			writeErr(w, mutationStatus(err, http.StatusNotFound), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"published": published})
	}
}

func (s *ShardedServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.Cluster.Metrics()
	if reg == nil {
		writeErr(w, http.StatusNotFound, errors.New("service: metrics disabled"))
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WriteProm(w)
}

func (s *ShardedServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if err := s.Cluster.Wedged(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "wedged", "error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "shards": s.Cluster.Shards()})
}

func (s *ShardedServer) handleShardz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Cluster.Stats())
}

// handleRebalance moves one shard to a new directory while serving:
// POST /rebalance?shard=N&dir=path. Synchronous — the response reports
// the completed move (or its failure, which leaves the old shard
// serving).
func (s *ShardedServer) handleRebalance(w http.ResponseWriter, r *http.Request) {
	idx, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, errors.New("service: ?shard=N required"))
		return
	}
	dir := r.URL.Query().Get("dir")
	if dir == "" {
		writeErr(w, http.StatusBadRequest, errors.New("service: ?dir=path required"))
		return
	}
	if err := s.Cluster.Rebalance(idx, dir); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"shard": idx, "dir": dir, "stats": s.Cluster.Stats()})
}

package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func newTestServer(t *testing.T) (*httptest.Server, *catalog.Catalog) {
	t.Helper()
	cat, err := catalog.Open(xmlschema.MustLEAD(), catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(cat).Handler())
	t.Cleanup(ts.Close)
	return ts, cat
}

func post(t *testing.T, url, contentType, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := jsonCopy(&sb, resp); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, sb.String()
}

func jsonCopy(sb *strings.Builder, resp *http.Response) (int64, error) {
	buf := make([]byte, 64<<10)
	var n int64
	for {
		k, err := resp.Body.Read(buf)
		sb.Write(buf[:k])
		n += int64(k)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := jsonCopy(&sb, resp); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, sb.String()
}

func TestServiceEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)

	// Register the Figure 3 dynamic definitions over HTTP.
	code, body := post(t, ts.URL+"/define/attr", "application/json",
		`{"name":"grid","source":"ARPS"}`)
	if code != http.StatusCreated {
		t.Fatalf("define attr: %d %s", code, body)
	}
	var attrResp map[string]int64
	if err := json.Unmarshal([]byte(body), &attrResp); err != nil {
		t.Fatal(err)
	}
	gridID := attrResp["attr_id"]
	for _, e := range []string{"dx", "dz"} {
		code, body = post(t, ts.URL+"/define/elem", "application/json",
			`{"name":"`+e+`","source":"ARPS","attr_id":`+itoa(gridID)+`,"type":"float"}`)
		if code != http.StatusCreated {
			t.Fatalf("define elem %s: %d %s", e, code, body)
		}
	}
	code, body = post(t, ts.URL+"/define/attr", "application/json",
		`{"name":"grid-stretching","source":"ARPS","parent_id":`+itoa(gridID)+`}`)
	if code != http.StatusCreated {
		t.Fatalf("define sub attr: %d %s", code, body)
	}
	var subResp map[string]int64
	_ = json.Unmarshal([]byte(body), &subResp)
	code, body = post(t, ts.URL+"/define/elem", "application/json",
		`{"name":"dzmin","source":"ARPS","attr_id":`+itoa(subResp["attr_id"])+`,"type":"float"}`)
	if code != http.StatusCreated {
		t.Fatalf("define dzmin: %d %s", code, body)
	}
	post(t, ts.URL+"/define/elem", "application/json",
		`{"name":"reference-height","source":"ARPS","attr_id":`+itoa(subResp["attr_id"])+`,"type":"float"}`)

	// Ingest the Figure 3 document.
	code, body = post(t, ts.URL+"/ingest?owner=alice", "application/xml", xmlschema.Figure3Document)
	if code != http.StatusCreated {
		t.Fatalf("ingest: %d %s", code, body)
	}
	var ingestResp map[string]int64
	_ = json.Unmarshal([]byte(body), &ingestResp)
	if ingestResp["id"] != 1 {
		t.Fatalf("ingest id = %d", ingestResp["id"])
	}

	// Query.
	code, body = post(t, ts.URL+"/query", "application/json",
		`{"attrs":[{"name":"grid","source":"ARPS","elems":[{"name":"dx","source":"ARPS","op":"=","value":1000}]}]}`)
	if code != http.StatusOK || !strings.Contains(body, "[1]") {
		t.Fatalf("query: %d %s", code, body)
	}

	// Search returns the XML.
	code, body = post(t, ts.URL+"/search", "application/json",
		`{"attrs":[{"name":"grid","source":"ARPS"}]}`)
	if code != http.StatusOK || !strings.Contains(body, "LEADresource") {
		t.Fatalf("search: %d %s", code, body)
	}

	// Objects listing.
	code, body = get(t, ts.URL+"/objects")
	if code != http.StatusOK || !strings.Contains(body, "alice") {
		t.Fatalf("objects: %d %s", code, body)
	}

	// Fetch reconstructs the document.
	code, body = get(t, ts.URL+"/fetch?id=1")
	if code != http.StatusOK {
		t.Fatalf("fetch: %d", code)
	}
	got, err := xmldoc.ParseString(body)
	if err != nil {
		t.Fatalf("fetched document not well-formed: %v", err)
	}
	want, _ := xmldoc.ParseString(xmlschema.Figure3Document)
	if !xmldoc.Equal(want, got) {
		t.Errorf("fetched document differs: %s", xmldoc.Diff(want, got))
	}

	// Schema ordering table.
	code, body = get(t, ts.URL+"/schema")
	if code != http.StatusOK || !strings.Contains(body, "detailed [dynamic attribute]") {
		t.Fatalf("schema: %d %s", code, body)
	}
}

func TestServiceErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	// Bad XML.
	code, _ := post(t, ts.URL+"/ingest", "application/xml", "<broken")
	if code != http.StatusUnprocessableEntity {
		t.Errorf("bad xml code = %d", code)
	}
	// Bad query JSON.
	code, _ = post(t, ts.URL+"/query", "application/json", "not json")
	if code != http.StatusBadRequest {
		t.Errorf("bad json code = %d", code)
	}
	// Unknown definition in query.
	code, body := post(t, ts.URL+"/query", "application/json",
		`{"attrs":[{"name":"nosuch","source":"X"}]}`)
	if code != http.StatusBadRequest || !strings.Contains(body, "unknown definition") {
		t.Errorf("unknown def: %d %s", code, body)
	}
	// Fetch missing.
	if code, _ := get(t, ts.URL+"/fetch?id=99"); code != http.StatusNotFound {
		t.Errorf("missing fetch code = %d", code)
	}
	if code, _ := get(t, ts.URL+"/fetch?id=abc"); code != http.StatusBadRequest {
		t.Errorf("bad id code = %d", code)
	}
	// Bad type in element definition.
	code, _ = post(t, ts.URL+"/define/elem", "application/json",
		`{"name":"x","attr_id":1,"type":"complex"}`)
	if code != http.StatusBadRequest {
		t.Errorf("bad type code = %d", code)
	}
	// Method not allowed.
	if code, _ := get(t, ts.URL+"/ingest"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest code = %d", code)
	}
}

func itoa(i int64) string {
	b, _ := json.Marshal(i)
	return string(b)
}

package service

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// newObsServer opens a durable in-memory catalog with the full
// observability surface on — metrics registry, default trace ring, WAL
// on a MemFS — so every instrumented layer can contribute families to
// /metrics.
func newObsServer(t *testing.T) string {
	t.Helper()
	cat, err := catalog.OpenDurable(xmlschema.MustLEAD(),
		catalog.Options{Metrics: obs.NewRegistry()},
		catalog.DurabilityOptions{FS: faultio.NewMemFS(), WALPath: "cat.wal"})
	if err != nil {
		t.Fatal(err)
	}
	return newServerFor(t, cat)
}

// driveTraffic sends one mutation and a few reads through the HTTP
// layer so the relstore, cache, WAL, query, and http families all have
// non-zero samples.
func driveTraffic(t *testing.T, ts string) {
	t.Helper()
	if code, got := post(t, ts+"/ingest?owner=alice", "application/xml", xmlschema.Figure3Document); code != http.StatusCreated {
		t.Fatalf("ingest: %d %s", code, got)
	}
	q := `{"attrs":[{"name":"theme","elems":[{"name":"themekey","op":"=","value":"convective_precipitation_amount"}]}]}`
	for i := 0; i < 2; i++ {
		if code, got := post(t, ts+"/query", "application/json", q); code != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, code, got)
		}
	}
	if code, got := post(t, ts+"/search", "application/json", q); code != http.StatusOK {
		t.Fatalf("search: %d %s", code, got)
	}
}

// TestMetricsEndpoint drives real traffic and then parses the
// Prometheus text exposition line by line: every sample must belong to
// a declared family and carry a numeric value, and every instrumented
// layer (relstore, cache, WAL, query engine, HTTP) must be represented.
func TestMetricsEndpoint(t *testing.T) {
	ts := newObsServer(t)
	driveTraffic(t, ts)

	code, body := get(t, ts+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d %s", code, body)
	}

	families := map[string]string{} // family -> declared type
	sampled := map[string]bool{}    // family -> has at least one sample
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			families[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("sample value not numeric in %q: %v", line, err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		// A histogram's _bucket/_sum/_count series trim back to the
		// declared family; counter and gauge samples match one exactly.
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		_, famOK := families[family]
		_, nameOK := families[name]
		if !famOK && !nameOK {
			t.Fatalf("sample %q has no # TYPE declaration", line)
		}
		sampled[family] = true
		sampled[name] = true
	}

	want := map[string]string{
		"relstore_row_reads_total":  "counter", // relstore layer
		"relstore_row_writes_total": "counter",
		"cache_hits_total":          "counter", // cache layer
		"cache_entries":             "gauge",
		"wal_appends_total":         "counter", // WAL layer
		"wal_fsync_nanos":           "histogram",
		"catalog_wal_commit_nanos":  "histogram",
		"catalog_op_nanos":          "histogram", // query engine
		"query_stage_nanos":         "histogram",
		"query_path_total":          "counter",
		"http_requests_total":       "counter", // service layer
		"http_request_nanos":        "histogram",
	}
	for fam, kind := range want {
		if families[fam] != kind {
			t.Errorf("family %s: declared type %q, want %q\n%s", fam, families[fam], kind, body)
		}
		if !sampled[fam] {
			t.Errorf("family %s declared but has no samples", fam)
		}
	}
}

// TestMetricsJSONFormat asserts ?format=json returns the structured
// registry state instead of the text exposition.
func TestMetricsJSONFormat(t *testing.T) {
	ts := newObsServer(t)
	driveTraffic(t, ts)
	code, body := get(t, ts+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("metrics json: %d %s", code, body)
	}
	var st obs.State
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("metrics?format=json not a State: %v\n%s", err, body)
	}
	if len(st.Counters) == 0 || len(st.Histograms) == 0 {
		t.Fatalf("expected counters and histograms in %s", body)
	}
}

// TestMetricsDisabled asserts the endpoint 404s with the standard JSON
// error shape when the catalog has no registry.
func TestMetricsDisabled(t *testing.T) {
	cat, err := catalog.Open(xmlschema.MustLEAD(), catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := newServerFor(t, cat)
	code, body := get(t, ts+"/metrics")
	if code != http.StatusNotFound {
		t.Fatalf("metrics without registry: %d %s", code, body)
	}
	var e map[string]string
	if err := json.Unmarshal([]byte(body), &e); err != nil || e["error"] == "" {
		t.Fatalf("expected standard JSON error body, got %s", body)
	}
}

// tracezPayload mirrors the /debug/tracez response shape.
type tracezPayload struct {
	Enabled bool         `json:"enabled"`
	Offered uint64       `json:"offered"`
	Traces  []*obs.Trace `json:"traces"`
}

// TestTracezEndpoint drives real requests and asserts the ring holds
// their traces with per-stage Figure-4 timings (the /search HTTP
// handler evaluates and builds as separate catalog operations so it can
// paginate between them), and that ?reset=1 clears the ring.
func TestTracezEndpoint(t *testing.T) {
	ts := newObsServer(t)
	driveTraffic(t, ts)

	code, body := get(t, ts+"/debug/tracez")
	if code != http.StatusOK {
		t.Fatalf("tracez: %d %s", code, body)
	}
	var p tracezPayload
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("tracez body: %v\n%s", err, body)
	}
	if !p.Enabled || p.Offered == 0 || len(p.Traces) == 0 {
		t.Fatalf("expected recorded traces: %s", body)
	}
	byOp := map[string]map[string]bool{} // op name -> stage names seen
	for _, tr := range p.Traces {
		if tr.TotalNS <= 0 {
			t.Fatalf("trace %q has no total time: %s", tr.Name, body)
		}
		stages := byOp[tr.Name]
		if stages == nil {
			stages = map[string]bool{}
			byOp[tr.Name] = stages
		}
		for _, st := range tr.Stages {
			if st.DurNS < 0 || st.OffsetNS < 0 {
				t.Fatalf("negative stage timing in %s", body)
			}
			stages[st.Name] = true
		}
	}
	// The Figure-4 stages from the evaluate op, the §5 build from the
	// response op, and the WAL commit span from the ingest mutation.
	for op, want := range map[string][]string{
		"evaluate": {"probe", "rollup", "intersect"},
		"response": {"response"},
		"mutate":   {"wal_commit"},
	} {
		if byOp[op] == nil {
			t.Fatalf("no %q trace in %s", op, body)
		}
		for _, stage := range want {
			if !byOp[op][stage] {
				t.Errorf("%s trace missing stage %q: %s", op, stage, body)
			}
		}
	}

	if code, _ := get(t, ts+"/debug/tracez?reset=1"); code != http.StatusOK {
		t.Fatalf("tracez reset: %d", code)
	}
	_, body = get(t, ts+"/debug/tracez")
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Traces) != 0 {
		t.Fatalf("reset should clear the ring: %s", body)
	}
}

// TestDurabilityzEndpoint asserts the unified debug handler serves the
// durability counters as JSON.
func TestDurabilityzEndpoint(t *testing.T) {
	ts := newObsServer(t)
	driveTraffic(t, ts)
	code, body := get(t, ts+"/debug/durabilityz")
	if code != http.StatusOK {
		t.Fatalf("durabilityz: %d %s", code, body)
	}
	var st catalog.DurabilityStats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("durabilityz body: %v\n%s", err, body)
	}
}

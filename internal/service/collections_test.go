package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/ontology"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// newCollServer builds a server with an ontology, one keyword-tagged
// object per term, and returns the test server plus object IDs.
func newCollServer(t *testing.T) (*httptest.Server, *catalog.Catalog) {
	t.Helper()
	cat, err := catalog.Open(xmlschema.MustLEAD(), catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(cat)
	o, err := ontology.Parse(ontology.CFKeywords)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetOntology(o)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for _, key := range []string{"convective_precipitation_amount", "air_temperature"} {
		xml := `<LEADresource><resourceID>` + key + `</resourceID><data><idinfo><keywords>
		  <theme><themekt>CF</themekt><themekey>` + key + `</themekey></theme>
		</keywords></idinfo></data></LEADresource>`
		if _, err := cat.IngestXML("u", xml); err != nil {
			t.Fatal(err)
		}
	}
	return ts, cat
}

func reqJSON(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := jsonCopy(&sb, resp); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, sb.String()
}

func TestCollectionEndpoints(t *testing.T) {
	ts, _ := newCollServer(t)

	// Create a project with one child experiment.
	code, body := reqJSON(t, "POST", ts.URL+"/collections", `{"name":"proj","owner":"alice"}`)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	var created map[string]int64
	_ = json.Unmarshal([]byte(body), &created)
	proj := created["id"]
	code, body = reqJSON(t, "POST", ts.URL+"/collections",
		`{"name":"exp","owner":"alice","parent_id":`+itoa(proj)+`}`)
	if code != http.StatusCreated {
		t.Fatalf("create child: %d %s", code, body)
	}
	_ = json.Unmarshal([]byte(body), &created)
	exp := created["id"]

	// Membership: object 1 into the experiment.
	code, body = reqJSON(t, "PUT", ts.URL+"/collections/"+itoa(exp)+"/objects/1", "")
	if code != http.StatusOK {
		t.Fatalf("membership: %d %s", code, body)
	}
	// Listing.
	code, body = reqJSON(t, "GET", ts.URL+"/collections", "")
	if code != http.StatusOK || !strings.Contains(body, `"proj"`) || !strings.Contains(body, `"exp"`) {
		t.Fatalf("list: %d %s", code, body)
	}
	// Subtree objects from the project root.
	code, body = reqJSON(t, "GET", ts.URL+"/collections/"+itoa(proj)+"/objects", "")
	if code != http.StatusOK || !strings.Contains(body, "[1]") {
		t.Fatalf("objects: %d %s", code, body)
	}

	// Context-scoped query: object 2 is outside the project.
	query := `{"attrs":[{"name":"theme","elems":[{"name":"themekt","op":"=","value":"CF"}]}]}`
	code, body = reqJSON(t, "POST", ts.URL+"/query?collection="+itoa(proj), query)
	if code != http.StatusOK || !strings.Contains(body, "[1]") {
		t.Fatalf("scoped query: %d %s", code, body)
	}
	code, body = reqJSON(t, "POST", ts.URL+"/query", query)
	if code != http.StatusOK || !strings.Contains(body, "[1,2]") {
		t.Fatalf("global query: %d %s", code, body)
	}

	// Broader context: which collections contain matching objects.
	code, body = reqJSON(t, "POST", ts.URL+"/collections/containing", query)
	if code != http.StatusOK || !strings.Contains(body, itoa(proj)) || !strings.Contains(body, itoa(exp)) {
		t.Fatalf("containing: %d %s", code, body)
	}

	// Remove membership.
	code, body = reqJSON(t, "DELETE", ts.URL+"/collections/"+itoa(exp)+"/objects/1", "")
	if code != http.StatusOK || !strings.Contains(body, "true") {
		t.Fatalf("remove: %d %s", code, body)
	}
}

func TestOntologyExpansionOverHTTP(t *testing.T) {
	ts, _ := newCollServer(t)
	query := `{"attrs":[{"name":"theme","elems":[{"name":"themekey","op":"=","value":"precipitation"}]}]}`
	// Without expansion: nothing carries the broad term.
	code, body := reqJSON(t, "POST", ts.URL+"/query", query)
	if code != http.StatusOK || !strings.Contains(body, "[]") {
		t.Fatalf("unexpanded: %d %s", code, body)
	}
	// With expansion: the narrower-term object matches.
	code, body = reqJSON(t, "POST", ts.URL+"/query?expand=1", query)
	if code != http.StatusOK || !strings.Contains(body, "[1]") {
		t.Fatalf("expanded: %d %s", code, body)
	}
	// Search honors both parameters too.
	code, body = reqJSON(t, "POST", ts.URL+"/search?expand=1", query)
	if code != http.StatusOK || !strings.Contains(body, "convective_precipitation_amount") {
		t.Fatalf("expanded search: %d %s", code, body)
	}
}

func TestCollectionEndpointErrors(t *testing.T) {
	ts, _ := newCollServer(t)
	if code, _ := reqJSON(t, "POST", ts.URL+"/collections", `{"owner":"x"}`); code != http.StatusUnprocessableEntity {
		t.Errorf("nameless create = %d", code)
	}
	if code, _ := reqJSON(t, "PUT", ts.URL+"/collections/99/objects/1", ""); code != http.StatusUnprocessableEntity {
		t.Errorf("bad collection = %d", code)
	}
	if code, _ := reqJSON(t, "PUT", ts.URL+"/collections/abc/objects/1", ""); code != http.StatusBadRequest {
		t.Errorf("bad id = %d", code)
	}
	if code, _ := reqJSON(t, "GET", ts.URL+"/collections/99/objects", ""); code != http.StatusNotFound {
		t.Errorf("missing subtree = %d", code)
	}
	if code, _ := reqJSON(t, "POST", ts.URL+"/query?collection=abc",
		`{"attrs":[{"name":"theme"}]}`); code != http.StatusInternalServerError && code != http.StatusBadRequest {
		t.Errorf("bad scope = %d", code)
	}
}

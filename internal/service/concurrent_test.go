package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// TestServiceConcurrentTraffic hammers the HTTP layer with overlapping
// ingests, publishes, queries, searches, and fetches. The handlers are
// thin pass-throughs over the catalog, so this is an end-to-end check
// that the catalog's reader/writer discipline holds across the service
// boundary: every response must be a well-formed success or a defined
// client error, never a 500. Run under -race it also proves the handler
// plumbing itself shares no mutable state.
func TestServiceConcurrentTraffic(t *testing.T) {
	cat, err := catalog.Open(xmlschema.MustLEAD(), catalog.Options{AutoRegister: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(cat).Handler())
	defer ts.Close()

	// Seed one document so dynamic ARPS definitions exist before the
	// readers start issuing queries against them.
	code, body := post(t, ts.URL+"/ingest?owner=seed", "application/xml", xmlschema.Figure3Document)
	if code != http.StatusCreated {
		t.Fatalf("seed ingest: %d %s", code, body)
	}

	const (
		writers       = 3
		docsPerWriter = 8
		readers       = 5
	)
	done := make(chan struct{})
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			client := ts.Client()
			for i := 0; i < docsPerWriter; i++ {
				resp, err := client.Post(ts.URL+"/ingest?owner=writer", "application/xml",
					strings.NewReader(xmlschema.Figure3Document))
				if err != nil {
					t.Errorf("writer %d: ingest: %v", w, err)
					return
				}
				var out map[string]int64
				dec := json.NewDecoder(resp.Body)
				decErr := dec.Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated || decErr != nil {
					t.Errorf("writer %d: ingest status %d (%v)", w, resp.StatusCode, decErr)
					return
				}
				pub, err := client.Post(ts.URL+"/objects/"+itoa(out["id"])+"/publish", "", nil)
				if err != nil {
					t.Errorf("writer %d: publish: %v", w, err)
					return
				}
				pub.Body.Close()
				if pub.StatusCode != http.StatusOK {
					t.Errorf("writer %d: publish status %d", w, pub.StatusCode)
					return
				}
			}
		}(w)
	}
	go func() {
		wwg.Wait()
		close(done)
	}()

	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			client := ts.Client()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				var code int
				var body string
				switch i % 4 {
				case 0:
					resp, err := client.Post(ts.URL+"/query", "application/json",
						strings.NewReader(`{"attrs":[{"name":"grid","source":"ARPS","elems":[{"name":"dx","source":"ARPS","op":"=","value":1000}]}]}`))
					if err != nil {
						t.Errorf("reader %d: query: %v", r, err)
						return
					}
					code = resp.StatusCode
					resp.Body.Close()
					if code != http.StatusOK {
						t.Errorf("reader %d: query status %d", r, code)
						return
					}
				case 1:
					code, body = get(t, ts.URL+"/fetch?id=1")
					if code != http.StatusOK || !strings.Contains(body, "LEADresource") {
						t.Errorf("reader %d: fetch status %d", r, code)
						return
					}
				case 2:
					code, _ = get(t, ts.URL+"/objects")
					if code != http.StatusOK {
						t.Errorf("reader %d: objects status %d", r, code)
						return
					}
				case 3:
					resp, err := client.Post(ts.URL+"/search", "application/json",
						strings.NewReader(`{"attrs":[{"name":"theme"}]}`))
					if err != nil {
						t.Errorf("reader %d: search: %v", r, err)
						return
					}
					code = resp.StatusCode
					resp.Body.Close()
					if code != http.StatusOK {
						t.Errorf("reader %d: search status %d", r, code)
						return
					}
				}
			}
		}(r)
	}
	rwg.Wait()

	if got := cat.ObjectCount(); got != 1+writers*docsPerWriter {
		t.Fatalf("object count = %d, want %d", got, 1+writers*docsPerWriter)
	}
}

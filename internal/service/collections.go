package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/ontology"
)

// Ontology, when set, enables query expansion: requests with ?expand=1
// widen keyword equality predicates through the term hierarchy.
func (s *Server) SetOntology(o *ontology.Ontology) { s.ont = o }

// registerCollectionRoutes adds the aggregation/context endpoints:
//
//	POST   /collections                      {"name","owner","parent_id"} -> {"id"}
//	GET    /collections                      -> [{"id","name","owner","parent_id"}]
//	PUT    /collections/{id}/objects/{oid}   add membership
//	DELETE /collections/{id}/objects/{oid}   remove membership
//	GET    /collections/{id}/objects         -> {"ids": [...]} (subtree)
//	POST   /collections/containing           query JSON -> {"collection_ids": [...]}
//
// and extends POST /query with ?collection=N (containment scope) and
// ?expand=1 (ontology expansion).
func (s *Server) registerCollectionRoutes(mux *http.ServeMux) {
	s.route(mux, "POST /collections", s.handleCreateCollection)
	s.route(mux, "GET /collections", s.handleListCollections)
	s.route(mux, "PUT /collections/{id}/objects/{oid}", s.handleMembership(true))
	s.route(mux, "DELETE /collections/{id}/objects/{oid}", s.handleMembership(false))
	s.route(mux, "GET /collections/{id}/objects", s.handleCollectionObjects)
	s.route(mux, "POST /collections/containing", s.handleContaining)
}

type createCollectionReq struct {
	Name     string `json:"name"`
	Owner    string `json:"owner"`
	ParentID int64  `json:"parent_id"`
}

func (s *Server) handleCreateCollection(w http.ResponseWriter, r *http.Request) {
	var req createCollectionReq
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(&req); err != nil {
		writeErr(w, bodyStatus(err), err)
		return
	}
	id, err := s.cat().CreateCollection(req.Name, req.Owner, req.ParentID)
	if err != nil {
		writeErr(w, mutationStatus(err, http.StatusUnprocessableEntity), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int64{"id": id})
}

func (s *Server) handleListCollections(w http.ResponseWriter, _ *http.Request) {
	type coll struct {
		ID       int64  `json:"id"`
		Name     string `json:"name"`
		Owner    string `json:"owner"`
		ParentID int64  `json:"parent_id"`
	}
	infos := s.cat().Collections()
	out := make([]coll, 0, len(infos))
	for _, c := range infos {
		out = append(out, coll{c.ID, c.Name, c.Owner, c.ParentID})
	}
	writeJSON(w, http.StatusOK, out)
}

func pathID(r *http.Request, name string) (int64, error) {
	id, err := strconv.ParseInt(r.PathValue(name), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("service: bad %s: %w", name, err)
	}
	return id, nil
}

func (s *Server) handleMembership(add bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		cid, err := pathID(r, "id")
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		oid, err := pathID(r, "oid")
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if add {
			if err := s.cat().AddToCollection(cid, oid); err != nil {
				writeErr(w, mutationStatus(err, http.StatusUnprocessableEntity), err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
			return
		}
		removed, err := s.cat().RemoveFromCollection(cid, oid)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"removed": removed})
	}
}

func (s *Server) handleCollectionObjects(w http.ResponseWriter, r *http.Request) {
	cid, err := pathID(r, "id")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ids, err := s.cat().CollectionObjects(cid)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if ids == nil {
		ids = []int64{}
	}
	writeJSON(w, http.StatusOK, map[string][]int64{"ids": ids})
}

func (s *Server) handleContaining(w http.ResponseWriter, r *http.Request) {
	q, ok := s.readQuery(w, r)
	if !ok {
		return
	}
	q = s.maybeExpand(r, q)
	ids, err := s.cat().CollectionsContaining(q)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, catalog.ErrUnknownDefinition) {
			status = http.StatusBadRequest
		}
		writeErr(w, status, err)
		return
	}
	if ids == nil {
		ids = []int64{}
	}
	writeJSON(w, http.StatusOK, map[string][]int64{"collection_ids": ids})
}

// maybeExpand applies ontology expansion when requested and configured.
func (s *Server) maybeExpand(r *http.Request, q *catalog.Query) *catalog.Query {
	if s.ont != nil && r.URL.Query().Get("expand") == "1" {
		return ontology.Expand(s.ont, q)
	}
	return q
}

// evaluateScoped runs the query, optionally scoped to ?collection=N.
// The request's context rides along: when the client disconnects, the
// pipeline aborts at its next stage boundary.
func (s *Server) evaluateScoped(r *http.Request, q *catalog.Query) ([]int64, error) {
	if cs := r.URL.Query().Get("collection"); cs != "" {
		cid, err := strconv.ParseInt(cs, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("service: bad collection: %w", err)
		}
		return s.cat().EvaluateInContextCtx(r.Context(), cid, q)
	}
	return s.cat().EvaluateContext(r.Context(), q)
}

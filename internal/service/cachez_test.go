package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func newServerFor(t *testing.T, cat *catalog.Catalog) string {
	t.Helper()
	ts := httptest.NewServer(New(cat).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestCachezEndpoint(t *testing.T) {
	ts, cat := newTestServer(t)

	if _, err := cat.IngestXML("alice", xmlschema.Figure3Document); err != nil {
		t.Fatal(err)
	}
	// Run the same query twice so the second hits the evaluate cache.
	body := `{"attrs":[{"name":"theme","elems":[{"name":"themekey","op":"=","value":"convective_precipitation_amount"}]}]}`
	for i := 0; i < 2; i++ {
		if code, got := post(t, ts.URL+"/query", "application/json", body); code != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, code, got)
		}
	}

	code, got := get(t, ts.URL+"/debug/cachez")
	if code != http.StatusOK {
		t.Fatalf("cachez: %d %s", code, got)
	}
	var st catalog.CacheStats
	if err := json.Unmarshal([]byte(got), &st); err != nil {
		t.Fatalf("cachez body not CacheStats JSON: %v\n%s", err, got)
	}
	if !st.Enabled {
		t.Fatalf("caching should default on: %s", got)
	}
	if st.DataGeneration == 0 {
		t.Fatalf("ingest should have advanced the data generation: %s", got)
	}
	if st.Evaluate.Hits == 0 || st.Evaluate.Misses == 0 {
		t.Fatalf("expected one miss then one hit on the evaluate layer: %s", got)
	}
}

func TestCachezEndpointDisabled(t *testing.T) {
	cat, err := catalog.Open(xmlschema.MustLEAD(), catalog.Options{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := newServerFor(t, cat)
	code, got := get(t, ts+"/debug/cachez")
	if code != http.StatusOK {
		t.Fatalf("cachez: %d %s", code, got)
	}
	var st catalog.CacheStats
	if err := json.Unmarshal([]byte(got), &st); err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Fatalf("cache should be disabled: %s", got)
	}
}

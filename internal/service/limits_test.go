package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func TestOversizedBodiesGet413(t *testing.T) {
	ts, _ := newTestServer(t)
	bigJSON := `{"name":"` + strings.Repeat("x", maxJSONBody) + `"}`
	for _, path := range []string{"/query", "/search", "/define/attr", "/define/elem", "/collections", "/collections/containing"} {
		code, _ := post(t, ts.URL+path, "application/json", bigJSON)
		if code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s with oversized body: %d, want 413", path, code)
		}
	}
	bigXML := "<doc>" + strings.Repeat("y", maxIngestBody) + "</doc>"
	if code, _ := post(t, ts.URL+"/ingest?owner=u", "application/xml", bigXML); code != http.StatusRequestEntityTooLarge {
		t.Errorf("/ingest with oversized body: %d, want 413", code)
	}
	// Bodies under the ceiling still reach the handlers.
	if code, _ := post(t, ts.URL+"/query", "application/json", `{"criteria":[]}`); code == http.StatusRequestEntityTooLarge {
		t.Error("small query body rejected as too large")
	}
}

// TestFaultDurabilityFailureMaps500: when the disk under a durable
// catalog dies, mutating endpoints must answer 500 (not a 4xx blaming
// the client) and acknowledged state must stay readable.
func TestFaultDurabilityFailureMaps500(t *testing.T) {
	mem := faultio.NewMemFS()
	// Let the catalog boot and accept one definition, then kill the disk
	// at the next write.
	faulty := faultio.NewFaulty(mem, faultio.Fault{Op: faultio.OpWrite, N: 3, Mode: faultio.CrashOp})
	cat, err := catalog.OpenDurable(xmlschema.MustLEAD(), catalog.Options{}, catalog.DurabilityOptions{
		FS: faulty, WALPath: "svc.wal",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(cat).Handler())
	t.Cleanup(ts.Close)

	// Boot cost one write (log header); the first define commits the
	// second; the next mutation hits the dead disk.
	if code, body := post(t, ts.URL+"/define/attr", "application/json",
		`{"name":"grid","source":"ARPS"}`); code != http.StatusCreated {
		t.Fatalf("define before fault: %d %s", code, body)
	}
	code, body := post(t, ts.URL+"/define/attr", "application/json",
		`{"name":"other","source":"ARPS"}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("define on dead disk: %d %s, want 500", code, body)
	}
	if !strings.Contains(body, "durability") {
		t.Fatalf("error body does not name the durability failure: %s", body)
	}
	// Reads still work.
	if code, _ := get(t, ts.URL+"/defs"); code != http.StatusOK {
		t.Fatalf("read after disk death: %d", code)
	}
}

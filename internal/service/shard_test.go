package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/shard"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// shardDocXML builds a minimal LEAD document with one unique themekey.
func shardDocXML(i int) string {
	return fmt.Sprintf(`<LEADresource>
  <resourceID>lead:svc/%04d</resourceID>
  <data><idinfo><keywords><theme>
    <themekt>none</themekt>
    <themekey>svc-key-%04d</themekey>
  </theme></keywords></idinfo></data>
</LEADresource>`, i, i)
}

// TestShardedService drives the full sharded wire surface: routed
// ingest, routed and fan-out queries, paging, fetch by global ID,
// publish, shard stats, a live rebalance over HTTP, and health.
func TestShardedService(t *testing.T) {
	cl, err := shard.Open(shard.Options{
		Schema:     xmlschema.MustLEAD(),
		Root:       "svc",
		Shards:     2,
		Durability: catalog.DurabilityOptions{FS: faultio.NewMemFS()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ts := httptest.NewServer(NewSharded(cl).Handler())
	defer ts.Close()

	post := func(path, body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/octet-stream", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	const docs = 12
	gids := make([]int64, docs)
	for i := 0; i < docs; i++ {
		owner := fmt.Sprintf("tenant-%d", i%4)
		status, out := post("/ingest?owner="+owner, shardDocXML(i))
		if status != http.StatusCreated {
			t.Fatalf("ingest %d: status %d (%v)", i, status, out)
		}
		gids[i] = int64(out["id"].(float64))
	}

	queryJSON := func(i int, owner string) string {
		return fmt.Sprintf(`{"owner":%q,"attrs":[{"name":"theme","elems":[{"name":"themekey","op":"=","value":"svc-key-%04d"}]}]}`, owner, i)
	}
	// Superuser query fans out and finds each document exactly once.
	for i := 0; i < docs; i++ {
		status, out := post("/query", queryJSON(i, ""))
		if status != http.StatusOK {
			t.Fatalf("query %d: status %d (%v)", i, status, out)
		}
		ids := out["ids"].([]any)
		if len(ids) != 1 || int64(ids[0].(float64)) != gids[i] {
			t.Fatalf("query %d: ids %v, want [%d]", i, ids, gids[i])
		}
	}
	// Owner-routed query sees the owner's own document.
	status, out := post("/query", queryJSON(3, "tenant-3"))
	if status != http.StatusOK || len(out["ids"].([]any)) != 1 {
		t.Fatalf("owner query: status %d %v", status, out)
	}
	// Cross-owner without fanout misses unpublished data; publish and
	// use the fan-out read.
	status, _ = post(fmt.Sprintf("/objects/%d/publish", gids[3]), "")
	if status != http.StatusOK {
		t.Fatalf("publish: status %d", status)
	}
	status, out = post("/query?fanout=1", queryJSON(3, "tenant-0"))
	if status != http.StatusOK || len(out["ids"].([]any)) != 1 {
		t.Fatalf("fanout query after publish: status %d %v", status, out)
	}

	// Paged fan-out search: pages partition the merged result.
	matchAll := `{"owner":"","attrs":[{"name":"theme","elems":[{"name":"themekt","op":"=","value":"none"}]}]}`
	status, out = post("/search?limit=5", matchAll)
	if status != http.StatusOK {
		t.Fatalf("search: status %d", status)
	}
	if total := int(out["total"].(float64)); total != docs {
		t.Fatalf("search total %d, want %d", total, docs)
	}
	if n := len(out["results"].([]any)); n != 5 {
		t.Fatalf("search page size %d, want 5", n)
	}

	// Fetch by global ID.
	resp, err := http.Get(fmt.Sprintf("%s/fetch?id=%d", ts.URL, gids[7]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch: status %d", resp.StatusCode)
	}

	// Shard stats and health.
	resp, err = http.Get(ts.URL + "/shardz")
	if err != nil {
		t.Fatal(err)
	}
	var stats []shard.ShardStat
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stats) != 2 || stats[0].Objects+stats[1].Objects != docs {
		t.Fatalf("shardz: %+v", stats)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// Live rebalance over HTTP, then re-verify every document.
	status, out = post("/rebalance?shard=1&dir=svc/shard-1-new", "")
	if status != http.StatusOK {
		t.Fatalf("rebalance: status %d (%v)", status, out)
	}
	for i := 0; i < docs; i++ {
		status, out := post("/query", queryJSON(i, ""))
		if status != http.StatusOK || len(out["ids"].([]any)) != 1 {
			t.Fatalf("post-rebalance query %d: status %d %v", i, status, out)
		}
	}
}

package service

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/shard"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// rankDocXML builds a LEAD document whose themekey repeats "storm" i+1
// times padded with filler keys, so BM25 term frequency — and therefore
// the expected ranking — is controlled per document.
func rankDocXML(i, stormKeys, fillerKeys int) string {
	var keys strings.Builder
	for k := 0; k < stormKeys; k++ {
		keys.WriteString("    <themekey>storm surge</themekey>\n")
	}
	for k := 0; k < fillerKeys; k++ {
		fmt.Fprintf(&keys, "    <themekey>filler_%d_%d</themekey>\n", i, k)
	}
	return fmt.Sprintf(`<LEADresource>
  <resourceID>lead:rank/%04d</resourceID>
  <data><idinfo><keywords><theme>
    <themekt>CF</themekt>
%s  </theme></keywords></idinfo></data>
</LEADresource>`, i, keys.String())
}

type rankedResult struct {
	ID    int64   `json:"id"`
	Score float64 `json:"score"`
	XML   string  `json:"xml"`
}

type rankedPage struct {
	Total   int            `json:"total"`
	Results []rankedResult `json:"results"`
}

// TestServiceRankedSearch drives POST /search with a rank clause on the
// single-catalog service: controlled term frequencies must come back in
// frequency order with scores, /query must refuse the rank clause, and
// offset/limit paging must tile the ranking exactly.
func TestServiceRankedSearch(t *testing.T) {
	ts, cat := newTestServer(t)
	const docs = 6
	for i := 0; i < docs; i++ {
		// Document i carries i+1 "storm surge" keys and enough filler to
		// keep every document the same length, so tf alone orders them:
		// doc 5 (6 repeats) first, doc 0 last.
		if _, err := cat.IngestXML(fmt.Sprintf("u%d", i), rankDocXML(i, i+1, docs-i)); err != nil {
			t.Fatal(err)
		}
	}

	body := `{"rank": {"terms": ["storm"], "k": 10}}`
	code, out := post(t, ts.URL+"/search", "application/json", body)
	if code != 200 {
		t.Fatalf("/search ranked: status %d: %s", code, out)
	}
	var page rankedPage
	if err := json.Unmarshal([]byte(out), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != docs || len(page.Results) != docs {
		t.Fatalf("ranked search: total=%d results=%d, want %d", page.Total, len(page.Results), docs)
	}
	for i, r := range page.Results {
		if want := int64(docs - i); r.ID != want {
			t.Fatalf("rank %d: object %d, want %d (tf order)", i, r.ID, want)
		}
		if i > 0 && r.Score >= page.Results[i-1].Score {
			t.Fatalf("rank %d: score %v not below %v", i, r.Score, page.Results[i-1].Score)
		}
		if !strings.Contains(r.XML, "<LEADresource>") {
			t.Fatalf("rank %d: no document XML in result", i)
		}
	}

	// Ranked composed with a structural criterion: only documents whose
	// themekt matches are admitted.
	code, out = post(t, ts.URL+"/search", "application/json",
		`{"attrs": [{"name": "theme", "elems": [{"name": "themekt", "op": "=", "value": "CF"}]}],
		  "rank": {"terms": ["storm"], "k": 3}}`)
	if code != 200 {
		t.Fatalf("/search ranked+structural: status %d: %s", code, out)
	}
	page = rankedPage{}
	if err := json.Unmarshal([]byte(out), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 3 || page.Results[0].ID != docs {
		t.Fatalf("ranked+structural: total=%d first=%d, want 3/%d", page.Total, page.Results[0].ID, docs)
	}

	// Paging: tiles of the ranking concatenate to the full order with no
	// drop or duplicate at the boundaries.
	var tiled []int64
	for off := 0; off < docs; off += 2 {
		code, out = post(t, fmt.Sprintf("%s/search?offset=%d&limit=2", ts.URL, off), "application/json", body)
		if code != 200 {
			t.Fatalf("page offset=%d: status %d", off, code)
		}
		var p rankedPage
		if err := json.Unmarshal([]byte(out), &p); err != nil {
			t.Fatal(err)
		}
		if p.Total != docs {
			t.Fatalf("page offset=%d: total=%d, want %d", off, p.Total, docs)
		}
		for _, r := range p.Results {
			tiled = append(tiled, r.ID)
		}
	}
	if len(tiled) != docs {
		t.Fatalf("paging tiles produced %d results, want %d", len(tiled), docs)
	}
	for i, id := range tiled {
		if want := int64(docs - i); id != want {
			t.Fatalf("tiled rank %d: object %d, want %d", i, id, want)
		}
	}
	// Past-the-end offset returns an empty page with the true total.
	code, out = post(t, ts.URL+"/search?offset=100&limit=2", "application/json", body)
	var p rankedPage
	if err := json.Unmarshal([]byte(out), &p); err != nil {
		t.Fatal(err)
	}
	if code != 200 || p.Total != docs || len(p.Results) != 0 {
		t.Fatalf("past-end page: status %d total=%d results=%d", code, p.Total, len(p.Results))
	}

	// /query refuses a rank clause; ranked /search refuses ?collection.
	if code, _ = post(t, ts.URL+"/query", "application/json", body); code != 400 {
		t.Fatalf("/query with rank: status %d, want 400", code)
	}
	if code, _ = post(t, ts.URL+"/search?collection=1", "application/json", body); code != 400 {
		t.Fatalf("ranked /search?collection: status %d, want 400", code)
	}
}

// TestShardedServiceRankedSearch drives POST /search with a rank clause
// on the sharded service: fan-out ranking with global statistics over a
// 2-shard cluster must reproduce the controlled tf order end to end.
func TestShardedServiceRankedSearch(t *testing.T) {
	cl, err := shard.Open(shard.Options{
		Schema:     xmlschema.MustLEAD(),
		Root:       "ranksvc",
		Shards:     2,
		Durability: catalog.DurabilityOptions{FS: faultio.NewMemFS()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ts := httptest.NewServer(NewSharded(cl).Handler())
	defer ts.Close()

	const docs = 6
	ids := map[int64]int{}
	for i := 0; i < docs; i++ {
		// Spread owners so the documents land on both shards.
		gid, err := cl.IngestXML(fmt.Sprintf("tenant-%d", i), rankDocXML(i, i+1, docs-i))
		if err != nil {
			t.Fatal(err)
		}
		ids[gid] = i
	}
	for i := 0; i < docs; i++ {
		gid := int64(0)
		for g, d := range ids {
			if d == i {
				gid = g
			}
		}
		if err := cl.SetPublished(gid, true); err != nil {
			t.Fatal(err)
		}
	}

	body := `{"rank": {"terms": ["storm"], "k": 10}}`
	code, out := post(t, ts.URL+"/search?fanout=1", "application/json", body)
	if code != 200 {
		t.Fatalf("sharded ranked /search: status %d: %s", code, out)
	}
	var page rankedPage
	if err := json.Unmarshal([]byte(out), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != docs {
		t.Fatalf("sharded ranked search: total=%d, want %d", page.Total, docs)
	}
	for i, r := range page.Results {
		if want := docs - 1 - i; ids[r.ID] != want {
			t.Fatalf("sharded rank %d: document %d, want %d (tf order under global stats)", i, ids[r.ID], want)
		}
		if i > 0 && r.Score >= page.Results[i-1].Score {
			t.Fatalf("sharded rank %d: score %v not below %v", i, r.Score, page.Results[i-1].Score)
		}
	}

	// /query refuses a rank clause on the sharded surface too.
	if code, _ := post(t, ts.URL+"/query", "application/json", body); code != 400 {
		t.Fatalf("sharded /query with rank: status %d, want 400", code)
	}
}

package workload

import (
	"bytes"
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
)

// TestRankedQueryDeterminism: the ranked stream is a pure function of
// (seed, index), and different seeds produce different streams.
func TestRankedQueryDeterminism(t *testing.T) {
	g1 := New(Default())
	g2 := New(Default())
	for i := 0; i < 50; i++ {
		a, b := g1.RankedQuery(i), g2.RankedQuery(i)
		if len(a.Rank.Terms) != len(b.Rank.Terms) {
			t.Fatalf("query %d: term counts diverge", i)
		}
		for j := range a.Rank.Terms {
			if a.Rank.Terms[j] != b.Rank.Terms[j] {
				t.Fatalf("query %d term %d: %q != %q", i, j, a.Rank.Terms[j], b.Rank.Terms[j])
			}
		}
	}
	other := Default()
	other.Seed = 7
	g3 := New(other)
	same := 0
	for i := 0; i < 50; i++ {
		if g1.RankedQuery(i).Rank.Terms[0] == g3.RankedQuery(i).Rank.Terms[0] {
			same++
		}
	}
	if same == 50 {
		t.Fatal("seed change did not perturb the ranked stream")
	}
}

// TestRankedStreamZipfSkew: the head term must dominate the tail — the
// most frequent term appears at least 5x as often as the median one.
func TestRankedStreamZipfSkew(t *testing.T) {
	g := New(Default())
	hist := g.TermHistogram(400)
	if len(hist) < 10 {
		t.Fatalf("only %d distinct terms in 400 queries — vocabulary collapsed", len(hist))
	}
	head, median := hist[0].Count, hist[len(hist)/2].Count
	if head < 5*median {
		t.Fatalf("stream not Zipf-skewed: head=%d median=%d", head, median)
	}
}

// TestQueryLogRoundTrip: the JSON-lines log reproduces every query —
// ranked, structural, and composed — exactly (verified by re-marshal).
func TestQueryLogRoundTrip(t *testing.T) {
	g := New(Default())
	var qs []*catalog.Query
	for i := 0; i < 30; i++ {
		switch i % 4 {
		case 0:
			qs = append(qs, g.RankedQuery(i))
		case 1:
			qs = append(qs, g.RankedStructuralQuery(i))
		case 2:
			qs = append(qs, g.PointQuery(i, i, i))
		case 3:
			qs = append(qs, g.ThemeQuery(i))
		}
	}
	var buf bytes.Buffer
	if err := WriteQueryLog(&buf, qs); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReadQueryLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(qs) {
		t.Fatalf("replay returned %d queries, wrote %d", len(replayed), len(qs))
	}
	for i := range qs {
		want, err := catalog.MarshalQueryJSON(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := catalog.MarshalQueryJSON(replayed[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("query %d did not round-trip:\nwrote %s\nread  %s", i, want, got)
		}
	}
}

// Package workload generates the synthetic LEAD-profile corpus and query
// mix used by the benchmark harness, standing in for the production
// forecast metadata the paper's project captured (ARPS/WRF Fortran
// namelist parameters wrapped in FGDC-style metadata documents; see
// DESIGN.md's substitution table and the CCGrid'04 synthetic workload the
// paper cites as [7]).
//
// Generation is fully deterministic in (Config.Seed, document index), so
// experiments are reproducible and stores can be compared on identical
// corpora.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// Config shapes the corpus.
type Config struct {
	Seed int64
	// Docs is the corpus size.
	Docs int
	// ThemesPerDoc is the number of theme keyword attributes per document.
	ThemesPerDoc int
	// KeysPerTheme is the number of themekey values per theme.
	KeysPerTheme int
	// DynamicAttrsPerDoc is the number of namelist groups (detailed
	// instances) per document.
	DynamicAttrsPerDoc int
	// ParamsPerAttr is the number of leaf parameters per group (split
	// between the top group and its nested sub-groups).
	ParamsPerAttr int
	// NestDepth is the sub-attribute nesting depth below each top group
	// (0 = flat groups).
	NestDepth int
	// ValueCardinality is the number of distinct values each parameter
	// takes across the corpus; a point query on one value therefore
	// selects ~Docs/ValueCardinality documents.
	ValueCardinality int
}

// Default returns the baseline configuration used by the experiments.
func Default() Config {
	return Config{
		Seed:               42,
		Docs:               500,
		ThemesPerDoc:       3,
		KeysPerTheme:       3,
		DynamicAttrsPerDoc: 3,
		ParamsPerAttr:      6,
		NestDepth:          1,
		ValueCardinality:   20,
	}
}

// models and group/parameter vocabulary drawn from ARPS and WRF namelist
// conventions.
var (
	modelNames = []string{"ARPS", "WRF"}
	groupNames = []string{"grid", "dynamics", "physics", "radiation", "surface", "microphysics", "boundary", "nudging"}
	paramNames = []string{
		"dx", "dy", "dz", "dzmin", "strhopt", "ctrlat", "ctrlon", "nx", "ny",
		"nz", "dtbig", "dtsml", "tstop", "e_we", "e_sn", "e_vert", "time_step",
		"cfl", "kmix", "zrefsfc", "rlxlbc", "ptpert0", "hmount", "qvtop",
	}
	themeKts  = []string{"CF NetCDF", "GCMD", "CUAHSI", "GEOSS"}
	themeKeys = []string{
		"convective_precipitation_amount", "convective_precipitation_flux",
		"air_pressure_at_cloud_base", "air_pressure_at_cloud_top",
		"radar_reflectivity", "air_temperature", "relative_humidity",
		"eastward_wind", "northward_wind", "surface_altitude",
		"tendency_of_air_pressure", "atmosphere_boundary_layer_thickness",
	}
	placeKeys = []string{"Oklahoma", "Kansas", "Nebraska", "Texas", "Iowa", "Missouri"}
	origins   = []string{"NWS", "CAPS", "NCAR", "UNIDATA"}
)

// Generator produces documents and queries for one Config.
type Generator struct {
	cfg    Config
	Schema *xmlschema.Schema
}

// New builds a generator over the LEAD schema.
func New(cfg Config) *Generator {
	return &Generator{cfg: cfg, Schema: xmlschema.MustLEAD()}
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// groupName returns the identity of dynamic group gi: name and source.
func (g *Generator) groupName(gi int) (name, source string) {
	return groupNames[gi%len(groupNames)] + suffix(gi/len(groupNames)),
		modelNames[gi%len(modelNames)]
}

func suffix(n int) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf("_%d", n)
}

// subGroupName returns the identity of nesting level l under group gi.
func (g *Generator) subGroupName(gi, l int) (name, source string) {
	base, source := g.groupName(gi)
	return fmt.Sprintf("%s-sub%d", base, l), source
}

// paramName returns parameter pi's name within a group.
func (g *Generator) paramName(pi int) string {
	return paramNames[pi%len(paramNames)] + suffix(pi/len(paramNames))
}

// RegisterDefinitions registers all dynamic definitions the corpus uses
// on a catalog: each group, its nested sub-groups, and float-typed
// parameters at every level.
func (g *Generator) RegisterDefinitions(c *catalog.Catalog) error {
	perLevel := g.paramsPerLevel()
	for gi := 0; gi < g.cfg.DynamicAttrsPerDoc; gi++ {
		name, source := g.groupName(gi)
		def, err := c.RegisterAttr(name, source, 0, "")
		if err != nil {
			return err
		}
		parent := def
		for l := 0; l <= g.cfg.NestDepth; l++ {
			for pi := 0; pi < perLevel; pi++ {
				if _, err := c.RegisterElem(g.paramName(l*perLevel+pi), source, parent.ID, core.DTFloat, ""); err != nil {
					return err
				}
			}
			if l == g.cfg.NestDepth {
				break
			}
			subName, subSource := g.subGroupName(gi, l+1)
			sub, err := c.RegisterAttr(subName, subSource, parent.ID, "")
			if err != nil {
				return err
			}
			parent = sub
		}
	}
	return nil
}

// paramsPerLevel splits ParamsPerAttr across the nesting levels.
func (g *Generator) paramsPerLevel() int {
	levels := g.cfg.NestDepth + 1
	per := g.cfg.ParamsPerAttr / levels
	if per < 1 {
		per = 1
	}
	return per
}

// paramValue is the deterministic value of parameter (doc, group, level,
// param): an integer in [0, ValueCardinality) scaled to look like a grid
// spacing. Selectivity of an equality query is therefore
// ~1/ValueCardinality.
func (g *Generator) paramValue(doc, gi, l, pi int) float64 {
	h := int64(doc)*1000003 + int64(gi)*10007 + int64(l)*101 + int64(pi)*13 + g.cfg.Seed
	if h < 0 {
		h = -h
	}
	card := g.cfg.ValueCardinality
	if card < 1 {
		card = 1
	}
	return float64(h%int64(card)) * 250
}

// Document generates document i of the corpus.
func (g *Generator) Document(i int) *xmldoc.Node {
	rng := rand.New(rand.NewSource(g.cfg.Seed*1_000_003 + int64(i)))
	root := xmldoc.NewNode("LEADresource")
	root.Append(xmldoc.NewLeaf("resourceID", fmt.Sprintf("lead:resource/%06d", i)))
	data := xmldoc.NewNode("data")
	root.Append(data)

	idinfo := xmldoc.NewNode("idinfo")
	data.Append(idinfo)

	citation := xmldoc.NewNode("citation")
	citation.Append(
		xmldoc.NewLeaf("origin", origins[rng.Intn(len(origins))]),
		xmldoc.NewLeaf("pubdate", fmt.Sprintf("2006-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))),
		xmldoc.NewLeaf("title", fmt.Sprintf("Forecast run %06d", i)),
	)
	idinfo.Append(citation)

	status := xmldoc.NewNode("status")
	progress := "Complete"
	if i%5 == 0 {
		progress = "In work"
	}
	status.Append(xmldoc.NewLeaf("progress", progress), xmldoc.NewLeaf("update", "As needed"))
	idinfo.Append(status)

	keywords := xmldoc.NewNode("keywords")
	idinfo.Append(keywords)
	for ti := 0; ti < g.cfg.ThemesPerDoc; ti++ {
		theme := xmldoc.NewNode("theme")
		theme.Append(xmldoc.NewLeaf("themekt", themeKts[(i+ti)%len(themeKts)]))
		for ki := 0; ki < g.cfg.KeysPerTheme; ki++ {
			theme.Append(xmldoc.NewLeaf("themekey", themeKeys[(i*7+ti*3+ki)%len(themeKeys)]))
		}
		keywords.Append(theme)
	}
	place := xmldoc.NewNode("place")
	place.Append(
		xmldoc.NewLeaf("placekt", "GNS"),
		xmldoc.NewLeaf("placekey", placeKeys[i%len(placeKeys)]),
	)
	keywords.Append(place)

	geospatial := xmldoc.NewNode("geospatial")
	data.Append(geospatial)
	spdom := xmldoc.NewNode("spdom")
	bounding := xmldoc.NewNode("bounding")
	west := -105 + float64(i%8)
	south := 30 + float64(i%6)
	bounding.Append(
		xmldoc.NewLeaf("westbc", fmt.Sprintf("%.2f", west)),
		xmldoc.NewLeaf("eastbc", fmt.Sprintf("%.2f", west+6)),
		xmldoc.NewLeaf("northbc", fmt.Sprintf("%.2f", south+5)),
		xmldoc.NewLeaf("southbc", fmt.Sprintf("%.2f", south)),
	)
	spdom.Append(bounding)
	geospatial.Append(spdom)

	eainfo := xmldoc.NewNode("eainfo")
	geospatial.Append(eainfo)
	perLevel := g.paramsPerLevel()
	for gi := 0; gi < g.cfg.DynamicAttrsPerDoc; gi++ {
		name, source := g.groupName(gi)
		detailed := xmldoc.NewNode("detailed")
		enttyp := xmldoc.NewNode("enttyp")
		enttyp.Append(xmldoc.NewLeaf("enttypl", name), xmldoc.NewLeaf("enttypds", source))
		detailed.Append(enttyp)
		g.appendParams(detailed, i, gi, 0, perLevel, source)
		if g.cfg.NestDepth > 0 {
			detailed.Append(g.nestedGroup(i, gi, 1, perLevel))
		}
		eainfo.Append(detailed)
	}

	lineage := xmldoc.NewNode("lineage")
	procstep := xmldoc.NewNode("procstep")
	procstep.Append(
		xmldoc.NewLeaf("procdesc", "ARPS forecast integration"),
		xmldoc.NewLeaf("procdate", "2006-05-12"),
	)
	lineage.Append(procstep)
	data.Append(lineage)
	return root
}

// appendParams adds the leaf parameters of one nesting level.
func (g *Generator) appendParams(parent *xmldoc.Node, doc, gi, level, perLevel int, source string) {
	for pi := 0; pi < perLevel; pi++ {
		attr := xmldoc.NewNode("attr")
		attr.Append(
			xmldoc.NewLeaf("attrlabl", g.paramName(level*perLevel+pi)),
			xmldoc.NewLeaf("attrdefs", source),
			xmldoc.NewLeaf("attrv", fmt.Sprintf("%.3f", g.paramValue(doc, gi, level, pi))),
		)
		parent.Append(attr)
	}
}

// nestedGroup builds the sub-attribute chain below a top group.
func (g *Generator) nestedGroup(doc, gi, level, perLevel int) *xmldoc.Node {
	name, source := g.subGroupName(gi, level)
	attr := xmldoc.NewNode("attr")
	attr.Append(
		xmldoc.NewLeaf("attrlabl", name),
		xmldoc.NewLeaf("attrdefs", source),
	)
	g.appendParams(attr, doc, gi, level, perLevel, source)
	if level < g.cfg.NestDepth {
		attr.Append(g.nestedGroup(doc, gi, level+1, perLevel))
	}
	return attr
}

// Corpus generates all documents.
func (g *Generator) Corpus() []*xmldoc.Node {
	docs := make([]*xmldoc.Node, g.cfg.Docs)
	for i := range docs {
		docs[i] = g.Document(i)
	}
	return docs
}

// PointQuery builds an equality query on one top-level parameter of one
// dynamic group; k selects the value bucket, giving ~Docs/ValueCardinality
// expected hits.
func (g *Generator) PointQuery(gi, pi, k int) *catalog.Query {
	name, source := g.groupName(gi % g.cfg.DynamicAttrsPerDoc)
	card := g.cfg.ValueCardinality
	if card < 1 {
		card = 1
	}
	q := &catalog.Query{}
	q.Attr(name, source).AddElem(g.paramName(pi%g.paramsPerLevel()), source,
		relstore.OpEq, relstore.Float(float64(k%card)*250))
	return q
}

// RangeQuery builds a range query spanning frac of the value domain.
func (g *Generator) RangeQuery(gi, pi int, frac float64) *catalog.Query {
	name, source := g.groupName(gi % g.cfg.DynamicAttrsPerDoc)
	card := g.cfg.ValueCardinality
	if card < 1 {
		card = 1
	}
	hi := float64(card) * 250 * frac
	q := &catalog.Query{}
	q.Attr(name, source).AddElem(g.paramName(pi%g.paramsPerLevel()), source,
		relstore.OpLt, relstore.Float(hi))
	return q
}

// NestedQuery builds a query whose criteria tree descends depth levels of
// sub-attributes (capped at the corpus nesting depth), with an equality
// predicate at the deepest level.
func (g *Generator) NestedQuery(gi, k, depth int) *catalog.Query {
	if depth > g.cfg.NestDepth {
		depth = g.cfg.NestDepth
	}
	name, source := g.groupName(gi % g.cfg.DynamicAttrsPerDoc)
	perLevel := g.paramsPerLevel()
	card := g.cfg.ValueCardinality
	if card < 1 {
		card = 1
	}
	q := &catalog.Query{}
	cur := q.Attr(name, source)
	for l := 1; l <= depth; l++ {
		subName, subSource := g.subGroupName(gi%g.cfg.DynamicAttrsPerDoc, l)
		sub := &catalog.AttrCriteria{Name: subName, Source: subSource}
		cur.AddSub(sub)
		cur = sub
	}
	cur.AddElem(g.paramName(depth*perLevel), source, relstore.OpEq,
		relstore.Float(float64(k%card)*250))
	return q
}

// ThemeQuery builds a structural keyword query.
func (g *Generator) ThemeQuery(i int) *catalog.Query {
	q := &catalog.Query{}
	q.Attr("theme", "").AddElem("themekey", "", relstore.OpEq,
		relstore.Str(themeKeys[i%len(themeKeys)]))
	return q
}

// MultiQuery combines n top-level criteria (dynamic point + theme).
func (g *Generator) MultiQuery(k, n int) *catalog.Query {
	q := &catalog.Query{}
	for c := 0; c < n; c++ {
		if c%2 == 0 {
			gi := c / 2 % g.cfg.DynamicAttrsPerDoc
			name, source := g.groupName(gi)
			q.Attr(name, source).AddElem(g.paramName(c%g.paramsPerLevel()), source,
				relstore.OpGe, relstore.Float(0))
		} else {
			q.Attr("theme", "").AddElem("themekt", "", relstore.OpEq,
				relstore.Str(themeKts[k%len(themeKts)]))
		}
	}
	return q
}

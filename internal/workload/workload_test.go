package workload

import (
	"fmt"
	"testing"

	"github.com/gridmeta/hybridcat/internal/baseline"
	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func smallConfig() Config {
	cfg := Default()
	cfg.Docs = 40
	cfg.NestDepth = 2
	cfg.ParamsPerAttr = 6
	return cfg
}

func TestGenerationDeterministic(t *testing.T) {
	g1 := New(smallConfig())
	g2 := New(smallConfig())
	for i := 0; i < 10; i++ {
		a, b := g1.Document(i), g2.Document(i)
		if !xmldoc.Equal(a, b) {
			t.Fatalf("doc %d not deterministic: %s", i, xmldoc.Diff(a, b))
		}
	}
	// Different seeds diverge.
	cfg := smallConfig()
	cfg.Seed = 99
	g3 := New(cfg)
	if xmldoc.Equal(g1.Document(0), g3.Document(0)) {
		t.Error("different seeds should produce different documents")
	}
}

func TestDocumentsValidAgainstSchemaAndDefs(t *testing.T) {
	cfg := smallConfig()
	g := New(cfg)
	c, err := catalog.Open(g.Schema, catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RegisterDefinitions(c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Docs; i++ {
		if _, err := c.Ingest("bench", g.Document(i)); err != nil {
			t.Fatalf("doc %d failed ingest: %v", i, err)
		}
	}
	if c.ObjectCount() != cfg.Docs {
		t.Errorf("objects = %d", c.ObjectCount())
	}
	// Nothing skipped: every document round-trips.
	for i := 1; i <= 5; i++ {
		doc, err := c.FetchDocument(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		want := g.Document(i - 1)
		if !xmldoc.Equal(want, doc) {
			t.Fatalf("doc %d round trip: %s", i, xmldoc.Diff(want, doc))
		}
	}
}

func TestQuerySelectivities(t *testing.T) {
	cfg := smallConfig()
	cfg.Docs = 200
	g := New(cfg)
	c, _ := catalog.Open(g.Schema, catalog.Options{})
	if err := g.RegisterDefinitions(c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Docs; i++ {
		if _, err := c.Ingest("bench", g.Document(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Point queries hit roughly Docs/ValueCardinality documents.
	total := 0
	for k := 0; k < cfg.ValueCardinality; k++ {
		ids, err := c.Evaluate(g.PointQuery(0, 0, k))
		if err != nil {
			t.Fatal(err)
		}
		total += len(ids)
	}
	if total != cfg.Docs {
		t.Errorf("point query buckets cover %d docs, want %d", total, cfg.Docs)
	}
	// Range query fraction scales.
	half, err := c.Evaluate(g.RangeQuery(0, 0, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(half) < cfg.Docs/4 || len(half) > 3*cfg.Docs/4 {
		t.Errorf("half-range query hit %d of %d", len(half), cfg.Docs)
	}
	// Nested queries at each depth return something for some bucket.
	for depth := 0; depth <= cfg.NestDepth; depth++ {
		found := 0
		for k := 0; k < cfg.ValueCardinality; k++ {
			ids, err := c.Evaluate(g.NestedQuery(0, k, depth))
			if err != nil {
				t.Fatalf("depth %d: %v", depth, err)
			}
			found += len(ids)
		}
		if found != cfg.Docs {
			t.Errorf("depth %d buckets cover %d docs, want %d", depth, found, cfg.Docs)
		}
	}
	// Theme and multi-criteria queries execute.
	if _, err := c.Evaluate(g.ThemeQuery(1)); err != nil {
		t.Error(err)
	}
	if _, err := c.Evaluate(g.MultiQuery(0, 4)); err != nil {
		t.Error(err)
	}
}

// TestOracleAgreementOnGeneratedCorpus is the end-to-end property test:
// on a generated corpus, the hybrid catalog must agree with the DOM
// oracle for every generated query shape.
func TestOracleAgreementOnGeneratedCorpus(t *testing.T) {
	cfg := smallConfig()
	cfg.Docs = 60
	g := New(cfg)
	schema := xmlschema.MustLEAD()
	c, _ := catalog.Open(g.Schema, catalog.Options{})
	if err := g.RegisterDefinitions(c); err != nil {
		t.Fatal(err)
	}
	docs := g.Corpus()
	for _, d := range docs {
		if _, err := c.Ingest("bench", d); err != nil {
			t.Fatal(err)
		}
	}
	var queries []*catalog.Query
	for k := 0; k < 6; k++ {
		queries = append(queries,
			g.PointQuery(k, k, k),
			g.RangeQuery(k, k, float64(k+1)/7),
			g.NestedQuery(k, k, k%3),
			g.ThemeQuery(k),
			g.MultiQuery(k, 1+k%3),
		)
	}
	for qi, q := range queries {
		got, err := c.Evaluate(q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		var want []int64
		for i, d := range docs {
			if baseline.DocMatches(schema, d, q) {
				want = append(want, int64(i+1))
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("query %d: hybrid %v, oracle %v", qi, got, want)
		}
	}
}

func TestConfigEdgeCases(t *testing.T) {
	// Zero nesting, tiny cardinality.
	cfg := Default()
	cfg.Docs = 5
	cfg.NestDepth = 0
	cfg.ValueCardinality = 1
	g := New(cfg)
	c, _ := catalog.Open(g.Schema, catalog.Options{})
	if err := g.RegisterDefinitions(c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Docs; i++ {
		if _, err := c.Ingest("bench", g.Document(i)); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := c.Evaluate(g.PointQuery(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != cfg.Docs {
		t.Errorf("cardinality-1 point query hit %d of %d", len(ids), cfg.Docs)
	}
	// NestedQuery with depth beyond the corpus caps.
	if _, err := c.Evaluate(g.NestedQuery(0, 0, 10)); err != nil {
		t.Errorf("capped nested query: %v", err)
	}
}

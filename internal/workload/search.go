package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/textindex"
)

// The search workload mode: BM25 ranked queries over the corpus's
// textual element values (theme keywords, place names, origins, titles),
// with term popularity following a Zipf distribution — a few head terms
// dominate the stream, matching observed metadata-search traffic, while
// the tail exercises low-df scoring. Queries are deterministic in
// (Config.Seed, query index) like the rest of the generator, and a
// query stream can be written to and replayed from a JSON-lines log so
// two stores (or two builds) can be compared on the identical stream.

// SearchVocabulary returns the ranked-query term vocabulary in
// popularity order (index 0 is the Zipf head): every token the corpus
// generator emits into textual element values, via the same tokenizer
// the text index applies.
func (g *Generator) SearchVocabulary() []string {
	seen := map[string]bool{}
	var vocab []string
	add := func(vals ...string) {
		for _, v := range vals {
			for _, tok := range textindex.Tokenize(v) {
				if !seen[tok] {
					seen[tok] = true
					vocab = append(vocab, tok)
				}
			}
		}
	}
	add(themeKeys...)
	add(placeKeys...)
	add(origins...)
	add(themeKts...)
	add("Forecast run", "Complete", "In work", "ARPS forecast integration")
	return vocab
}

// RankedQuery builds ranked query i of the stream: 1-3 Zipf-skewed
// vocabulary terms with the default top-k bound. Superuser scope — the
// stream measures ranking, not visibility.
func (g *Generator) RankedQuery(i int) *catalog.Query {
	rng := rand.New(rand.NewSource(g.cfg.Seed*2_000_003 + int64(i)))
	vocab := g.SearchVocabulary()
	zipf := rand.NewZipf(rng, 1.3, 1.5, uint64(len(vocab)-1))
	n := 1 + rng.Intn(3)
	terms := make([]string, 0, n)
	used := map[string]bool{}
	for len(terms) < n {
		t := vocab[zipf.Uint64()]
		if used[t] {
			continue
		}
		used[t] = true
		terms = append(terms, t)
	}
	return &catalog.Query{Rank: &catalog.RankSpec{Terms: terms, K: catalog.DefaultRankK}}
}

// RankedStructuralQuery composes ranked retrieval with a structural
// criterion: the same Zipf-skewed terms gated by a place-keyword
// equality, the content-and-structure shape of the paper's §3 keyword
// enhancement.
func (g *Generator) RankedStructuralQuery(i int) *catalog.Query {
	q := g.RankedQuery(i)
	q.Attr("place", "").AddElem("placekey", "", relstore.OpEq,
		relstore.Str(placeKeys[i%len(placeKeys)]))
	return q
}

// RankedQueries generates the first n queries of the ranked stream,
// mixing pure ranked (two of three) and ranked+structural shapes.
func (g *Generator) RankedQueries(n int) []*catalog.Query {
	qs := make([]*catalog.Query, n)
	for i := range qs {
		if i%3 == 2 {
			qs[i] = g.RankedStructuralQuery(i)
		} else {
			qs[i] = g.RankedQuery(i)
		}
	}
	return qs
}

// TermHistogram counts each vocabulary term's occurrences across the
// first n ranked queries, most frequent first — the observed Zipf skew,
// for experiment notes.
func (g *Generator) TermHistogram(n int) []TermCount {
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		for _, t := range g.RankedQuery(i).Rank.Terms {
			counts[t]++
		}
	}
	out := make([]TermCount, 0, len(counts))
	for t, c := range counts {
		out = append(out, TermCount{Term: t, Count: c})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Term < out[b].Term
	})
	return out
}

// TermCount is one term's frequency in a generated query stream.
type TermCount struct {
	Term  string
	Count int
}

// WriteQueryLog writes queries as a JSON-lines log (one compact wire-
// format query per line), replayable with ReadQueryLog.
func WriteQueryLog(w io.Writer, qs []*catalog.Query) error {
	for _, q := range qs {
		data, err := catalog.MarshalQueryJSON(q)
		if err != nil {
			return err
		}
		var line bytes.Buffer
		if err := json.Compact(&line, data); err != nil {
			return err
		}
		line.WriteByte('\n')
		if _, err := w.Write(line.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// ReadQueryLog replays a JSON-lines query log written by WriteQueryLog.
func ReadQueryLog(r io.Reader) ([]*catalog.Query, error) {
	var qs []*catalog.Query
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		q, err := catalog.ParseQueryJSON([]byte(line))
		if err != nil {
			return nil, fmt.Errorf("workload: query log line %d: %w", len(qs)+1, err)
		}
		qs = append(qs, q)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return qs, nil
}

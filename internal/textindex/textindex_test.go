package textindex

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"unicode"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   \t\n", nil},
		{"Convective_Precipitation_Amount", []string{"convective", "precipitation", "amount"}},
		{"radar-reflectivity, 2km", []string{"radar", "reflectivity", "2km"}},
		{"ARPS model v5.2.12", []string{"arps", "model", "v5", "2", "12"}},
		{"Überschall Größe", []string{"überschall", "größe"}},
		{"日本語 テスト", []string{"日本語", "テスト"}},
		{"---", nil},
		{strings.Repeat("a", MaxTokenRunes), []string{strings.Repeat("a", MaxTokenRunes)}},
		{strings.Repeat("a", MaxTokenRunes+1), nil},
		{"ok " + strings.Repeat("x", 500) + " fine", []string{"ok", "fine"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAnalyzeTermsDedupes(t *testing.T) {
	got := AnalyzeTerms([]string{"Radar Reflectivity", "radar", "STORM radar"})
	want := []string{"radar", "reflectivity", "storm"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AnalyzeTerms = %v, want %v", got, want)
	}
}

func TestIndexBasics(t *testing.T) {
	b := NewBuilder()
	b.Add(1, "storm surge storm")
	b.Add(2, "surge model")
	b.Add(3, "quiet")
	b.Add(3, "") // no tokens: contributes nothing
	ix := b.Build()
	if ix.Docs() != 3 {
		t.Fatalf("Docs = %d, want 3", ix.Docs())
	}
	if ix.DocFreq("storm") != 1 || ix.DocFreq("surge") != 2 || ix.DocFreq("absent") != 0 {
		t.Fatalf("unexpected doc freqs: storm=%d surge=%d", ix.DocFreq("storm"), ix.DocFreq("surge"))
	}
	pl := ix.Postings("surge")
	if len(pl) != 2 || pl[0].Doc != 1 || pl[1].Doc != 2 {
		t.Fatalf("postings not sorted by doc: %v", pl)
	}
	if pl := ix.Postings("storm"); pl[0].TF != 2 {
		t.Fatalf("tf(storm, doc1) = %d, want 2", pl[0].TF)
	}

	top := ix.TopK([]string{"storm", "surge"}, 10, nil, nil)
	if len(top) != 2 || top[0].Doc != 1 {
		t.Fatalf("TopK = %v, want doc 1 first (matches both terms, tf 2)", top)
	}
	if top[0].Score <= top[1].Score {
		t.Fatalf("scores not descending: %v", top)
	}

	// allow filter excludes doc 1 entirely.
	top = ix.TopK([]string{"storm", "surge"}, 10, nil, func(d int64) bool { return d != 1 })
	if len(top) != 1 || top[0].Doc != 2 {
		t.Fatalf("filtered TopK = %v, want only doc 2", top)
	}

	// k truncation.
	if top := ix.TopK([]string{"surge"}, 1, nil, nil); len(top) != 1 {
		t.Fatalf("k=1 returned %d results", len(top))
	}
	// Degenerate inputs.
	if ix.TopK(nil, 5, nil, nil) != nil || ix.TopK([]string{"surge"}, 0, nil, nil) != nil {
		t.Fatal("empty terms / k=0 should return nil")
	}
	if NewBuilder().Build().TopK([]string{"x"}, 5, nil, nil) != nil {
		t.Fatal("empty index should return nil")
	}
}

func TestStatsMerge(t *testing.T) {
	b1 := NewBuilder()
	b1.Add(1, "alpha beta")
	b2 := NewBuilder()
	b2.Add(2, "alpha gamma gamma")
	terms := []string{"alpha", "beta", "gamma"}
	var global Stats
	global.Merge(b1.Build().StatsFor(terms))
	global.Merge(b2.Build().StatsFor(terms))
	if global.Docs != 2 || global.TotalLen != 5 {
		t.Fatalf("merged stats = %+v", global)
	}
	if global.DocFreq["alpha"] != 2 || global.DocFreq["beta"] != 1 || global.DocFreq["gamma"] != 1 {
		t.Fatalf("merged doc freqs = %v", global.DocFreq)
	}
}

// TestShardedScoringMatchesSingleIndex is the distributed-statistics
// contract: splitting a corpus across indexes and scoring each with the
// summed Stats yields bit-identical scores to one index over the whole
// corpus.
func TestShardedScoringMatchesSingleIndex(t *testing.T) {
	docs := corpusDocs(rand.New(rand.NewSource(7)), 200)
	whole := NewBuilder()
	parts := []*Builder{NewBuilder(), NewBuilder(), NewBuilder()}
	for doc, text := range docs {
		whole.Add(doc, text)
		parts[doc%3].Add(doc, text)
	}
	single := whole.Build()
	terms := []string{"storm", "pressure", "radar"}

	var global Stats
	shards := make([]*Index, len(parts))
	for i, p := range parts {
		shards[i] = p.Build()
		global.Merge(shards[i].StatsFor(terms))
	}
	var merged []Scored
	for _, sh := range shards {
		merged = append(merged, sh.TopK(terms, len(docs), &global, nil)...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].Doc < merged[j].Doc
	})
	want := single.TopK(terms, len(docs), nil, nil)
	if len(merged) != len(want) {
		t.Fatalf("sharded %d results, single %d", len(merged), len(want))
	}
	for i := range want {
		if merged[i].Doc != want[i].Doc || merged[i].Score != want[i].Score {
			t.Fatalf("result %d: sharded %+v, single %+v", i, merged[i], want[i])
		}
	}
}

// bruteForceTopK recomputes BM25 from the raw documents with an
// independent implementation: tokenize every document, count term
// frequencies, and score-and-sort the whole corpus.
func bruteForceTopK(docs map[int64]string, terms []string, k int, allow func(int64) bool) []Scored {
	type docInfo struct {
		tf  map[string]int
		len int
	}
	infos := make(map[int64]docInfo)
	totalLen := 0
	for doc, text := range docs {
		toks := Tokenize(text)
		if len(toks) == 0 {
			continue
		}
		info := docInfo{tf: map[string]int{}, len: len(toks)}
		for _, tok := range toks {
			info.tf[tok]++
		}
		infos[doc] = info
		totalLen += len(toks)
	}
	n := len(infos)
	if n == 0 {
		return nil
	}
	avg := float64(totalLen) / float64(n)
	df := map[string]int{}
	for _, info := range infos {
		for tok := range info.tf {
			df[tok]++
		}
	}
	var out []Scored
	for doc, info := range infos {
		if allow != nil && !allow(doc) {
			continue
		}
		score := 0.0
		hit := false
		for _, term := range terms {
			tf := info.tf[term]
			if tf == 0 || df[term] == 0 {
				continue
			}
			hit = true
			idf := math.Log1p((float64(n) - float64(df[term]) + 0.5) / (float64(df[term]) + 0.5))
			norm := BM25K1 * (1 - BM25B + BM25B*float64(info.len)/avg)
			score += idf * float64(tf) * (BM25K1 + 1) / (float64(tf) + norm)
		}
		if hit {
			out = append(out, Scored{Doc: doc, Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

var corpusVocab = []string{
	"storm", "surge", "radar", "reflectivity", "pressure", "humidity",
	"convective", "precipitation", "amount", "model", "grid", "arps",
	"velocity", "wind", "temperature", "forecast",
}

func corpusDocs(rng *rand.Rand, n int) map[int64]string {
	docs := make(map[int64]string, n)
	for i := 0; i < n; i++ {
		words := make([]string, 2+rng.Intn(12))
		for j := range words {
			words[j] = corpusVocab[rng.Intn(len(corpusVocab))]
		}
		docs[int64(i)] = strings.Join(words, " ")
	}
	return docs
}

// TestTopKMatchesBruteForce is the property test required by the
// ranked-search issue: for randomized corpora, query term sets, k
// values, and admission filters, the index's TopK equals an independent
// brute-force score-and-sort oracle exactly (same docs, same order,
// same float64 scores).
func TestTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		docs := corpusDocs(rng, 1+rng.Intn(120))
		b := NewBuilder()
		for doc, text := range docs {
			// Split some documents across multiple Add calls to exercise
			// accumulation.
			if cut := strings.LastIndex(text[:len(text)/2], " "); rng.Intn(2) == 0 && cut > 0 {
				b.Add(doc, text[:cut])
				b.Add(doc, text[cut:])
			} else {
				b.Add(doc, text)
			}
		}
		ix := b.Build()

		nTerms := 1 + rng.Intn(4)
		terms := make([]string, nTerms)
		for i := range terms {
			terms[i] = corpusVocab[rng.Intn(len(corpusVocab))]
		}
		terms = AnalyzeTerms(terms)
		k := 1 + rng.Intn(20)
		var allow func(int64) bool
		if rng.Intn(3) == 0 {
			mod := int64(2 + rng.Intn(3))
			allow = func(d int64) bool { return d%mod == 0 }
		}

		got := ix.TopK(terms, k, nil, allow)
		want := bruteForceTopK(docs, terms, k, allow)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, oracle %d\ngot:  %v\nwant: %v", trial, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
				t.Fatalf("trial %d result %d: got %+v, oracle %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// FuzzTokenize fuzzes the analyzer over arbitrary byte sequences
// (invalid UTF-8, huge runs, exotic Unicode): it must never panic, and
// every produced token must be non-empty, bounded, lowercase, and
// alphanumeric.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"", " ", "hello world", "Convective_Precipitation_Amount",
		"ÜBERSCHALL-Größe", "日本語 テスト", "\xff\xfe broken \x80 utf8",
		strings.Repeat("a", 1<<12), strings.Repeat("ab ", 1000),
		"mixed 123 MIXED \x00 \ufffd end",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatal("empty token")
			}
			runes := []rune(tok)
			if len(runes) > MaxTokenRunes {
				t.Fatalf("token %q exceeds %d runes", tok, MaxTokenRunes)
			}
			for _, r := range runes {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q contains non-alphanumeric rune %q", tok, r)
				}
				if unicode.ToLower(r) != r {
					t.Fatalf("token %q not lowercased", tok)
				}
			}
		}
		// Analyzer agreement: AnalyzeTerms over the same input yields a
		// subset (the dedup) of the tokens, in order.
		deduped := AnalyzeTerms([]string{s})
		seen := map[string]bool{}
		var manual []string
		for _, tok := range toks {
			if !seen[tok] {
				seen[tok] = true
				manual = append(manual, tok)
			}
		}
		if !reflect.DeepEqual(deduped, manual) {
			t.Fatalf("AnalyzeTerms disagrees with Tokenize+dedup: %v vs %v", deduped, manual)
		}
		// Indexing arbitrary text must not panic and must keep lengths
		// consistent.
		b := NewBuilder()
		b.Add(1, s)
		ix := b.Build()
		if len(toks) == 0 && ix.Docs() != 0 {
			t.Fatal("tokenless text should index no documents")
		}
	})
}

// Package textindex is a tokenized inverted index with BM25 ranking
// over the catalog's attribute text values — the IR half of the hybrid
// content-and-structure search scenario (ROADMAP; Pehcevski, cs/0507070
// and cs/0508017). The index maps analyzed terms to per-document term
// frequencies plus document lengths; TopK scores a bag of query terms
// with BM25 and returns the k best documents, optionally restricted by
// a caller-supplied admission filter (structural matches, visibility).
//
// Indexes are immutable once built: the catalog builds one per snapshot
// epoch and shares it read-only across concurrent queries, exactly like
// its other epoch-stamped cache layers. For distributed scoring, Stats
// carries the corpus statistics (document count, total token length,
// per-term document frequencies); summing every shard's Stats and
// passing the total to TopK makes a scatter-gathered ranking identical
// to a single index holding the union of the shards' documents.
package textindex

import (
	"math"
	"sort"
	"unicode"
)

// MaxTokenRunes bounds a single token's length; longer letter/digit
// runs (base64 blobs, minified payloads) are dropped rather than
// indexed, so a huge pathological value cannot bloat the term
// dictionary.
const MaxTokenRunes = 64

// BM25 parameters, the standard Robertson defaults.
const (
	BM25K1 = 1.2
	BM25B  = 0.75
)

// Tokenize lowercases the text and splits it into letter/digit runs —
// any other rune (punctuation, separators, symbols) is a boundary.
// Tokens longer than MaxTokenRunes are dropped. The same analyzer runs
// over indexed values and query terms, so the two always agree.
func Tokenize(text string) []string {
	var out []string
	var run []rune
	flush := func() {
		if n := len(run); n > 0 && n <= MaxTokenRunes {
			out = append(out, string(run))
		}
		run = run[:0]
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			run = append(run, unicode.ToLower(r))
			continue
		}
		flush()
	}
	flush()
	return out
}

// AnalyzeTerms tokenizes each raw query term and returns the distinct
// analyzed tokens in first-appearance order. Deduplication makes
// scoring independent of repeated query terms, and the stable order
// keeps floating-point score accumulation deterministic across runs
// and across shards.
func AnalyzeTerms(terms []string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range terms {
		for _, tok := range Tokenize(t) {
			if !seen[tok] {
				seen[tok] = true
				out = append(out, tok)
			}
		}
	}
	return out
}

// Posting is one document's entry in a term's posting list.
type Posting struct {
	Doc int64
	TF  int32
}

// Scored is one ranked result: a document and its BM25 score.
type Scored struct {
	Doc   int64
	Score float64
}

// Stats carries the corpus statistics BM25 scoring depends on. A zero
// Stats means "use the index's own"; summed Stats from several indexes
// (Merge) score a distributed corpus with global frequencies.
type Stats struct {
	// Docs is the number of indexed documents.
	Docs int64 `json:"docs"`
	// TotalLen is the total token count across all documents.
	TotalLen int64 `json:"total_len"`
	// DocFreq maps an analyzed term to the number of documents
	// containing it.
	DocFreq map[string]int64 `json:"doc_freq"`
}

// Merge adds o's statistics into s (summing document counts, lengths,
// and per-term frequencies).
func (s *Stats) Merge(o Stats) {
	s.Docs += o.Docs
	s.TotalLen += o.TotalLen
	if s.DocFreq == nil {
		s.DocFreq = make(map[string]int64, len(o.DocFreq))
	}
	for t, n := range o.DocFreq {
		s.DocFreq[t] += n
	}
}

// Builder accumulates documents for one immutable Index. Add may be
// called any number of times per document; token counts accumulate.
type Builder struct {
	tf     map[string]map[int64]int32
	docLen map[int64]int32
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		tf:     make(map[string]map[int64]int32),
		docLen: make(map[int64]int32),
	}
}

// Add tokenizes text and credits its tokens to doc. Text producing no
// tokens contributes nothing (the document exists only if some Add
// produced at least one token).
func (b *Builder) Add(doc int64, text string) {
	toks := Tokenize(text)
	if len(toks) == 0 {
		return
	}
	b.docLen[doc] += int32(len(toks))
	for _, t := range toks {
		m := b.tf[t]
		if m == nil {
			m = make(map[int64]int32)
			b.tf[t] = m
		}
		m[doc]++
	}
}

// Build freezes the builder into an immutable Index. Posting lists are
// sorted by ascending document ID.
func (b *Builder) Build() *Index {
	ix := &Index{
		post:   make(map[string][]Posting, len(b.tf)),
		docLen: b.docLen,
	}
	for t, m := range b.tf {
		pl := make([]Posting, 0, len(m))
		for doc, tf := range m {
			pl = append(pl, Posting{Doc: doc, TF: tf})
		}
		sort.Slice(pl, func(i, j int) bool { return pl[i].Doc < pl[j].Doc })
		ix.post[t] = pl
	}
	for _, n := range b.docLen {
		ix.totalLen += int64(n)
	}
	return ix
}

// Index is an immutable inverted index over tokenized text, safe for
// concurrent readers.
type Index struct {
	post     map[string][]Posting
	docLen   map[int64]int32
	totalLen int64
}

// Docs returns the number of indexed documents.
func (ix *Index) Docs() int { return len(ix.docLen) }

// Terms returns the number of distinct terms in the dictionary.
func (ix *Index) Terms() int { return len(ix.post) }

// DocFreq returns the number of documents containing the analyzed term.
func (ix *Index) DocFreq(term string) int { return len(ix.post[term]) }

// Postings returns the term's posting list (ascending document ID),
// shared read-only; callers must not mutate it.
func (ix *Index) Postings(term string) []Posting { return ix.post[term] }

// StatsFor returns this index's corpus statistics, with DocFreq
// restricted to the given analyzed terms (all a scoring pass needs).
func (ix *Index) StatsFor(terms []string) Stats {
	st := Stats{
		Docs:     int64(len(ix.docLen)),
		TotalLen: ix.totalLen,
		DocFreq:  make(map[string]int64, len(terms)),
	}
	for _, t := range terms {
		if df := len(ix.post[t]); df > 0 {
			st.DocFreq[t] = int64(df)
		}
	}
	return st
}

// bm25IDF is the (always positive) BM25+ style inverse document
// frequency: ln(1 + (N - df + 0.5)/(df + 0.5)).
func bm25IDF(docs, df int64) float64 {
	return math.Log1p((float64(docs) - float64(df) + 0.5) / (float64(df) + 0.5))
}

// TopK scores the analyzed terms with BM25 and returns the k
// highest-scoring admitted documents, score descending with ties broken
// by ascending document ID. st supplies the corpus statistics (nil: the
// index's own — pass summed shard statistics for global scoring). allow,
// when non-nil, admits documents (structural candidate membership,
// visibility); others are skipped before scoring.
//
// Scoring is deterministic: terms accumulate in the given order and
// postings in document order, so equal corpora produce bit-identical
// scores regardless of sharding.
func (ix *Index) TopK(terms []string, k int, st *Stats, allow func(int64) bool) []Scored {
	if k <= 0 || len(terms) == 0 {
		return nil
	}
	docs, totalLen := int64(len(ix.docLen)), ix.totalLen
	dfOf := func(t string) int64 { return int64(len(ix.post[t])) }
	if st != nil {
		docs, totalLen = st.Docs, st.TotalLen
		dfOf = func(t string) int64 { return st.DocFreq[t] }
	}
	if docs == 0 {
		return nil
	}
	avgLen := float64(totalLen) / float64(docs)
	scores := make(map[int64]float64)
	for _, t := range terms {
		pl := ix.post[t]
		if len(pl) == 0 {
			continue
		}
		df := dfOf(t)
		if df == 0 {
			continue
		}
		idf := bm25IDF(docs, df)
		for _, p := range pl {
			if allow != nil && !allow(p.Doc) {
				continue
			}
			tf := float64(p.TF)
			dl := float64(ix.docLen[p.Doc])
			norm := BM25K1 * (1 - BM25B + BM25B*dl/avgLen)
			scores[p.Doc] += idf * tf * (BM25K1 + 1) / (tf + norm)
		}
	}
	out := make([]Scored, 0, len(scores))
	for doc, s := range scores {
		out = append(out, Scored{Doc: doc, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

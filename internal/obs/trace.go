package obs

import (
	"sort"
	"sync"
	"time"
)

// Stage is one timed span inside a Trace. Offsets and durations are
// monotonic-clock nanoseconds relative to the trace start.
type Stage struct {
	Name     string `json:"stage"`
	OffsetNS int64  `json:"offset_ns"`
	DurNS    int64  `json:"duration_ns"`
	Rows     int64  `json:"rows,omitempty"`
	Note     string `json:"note,omitempty"`
}

// Trace records one operation (a query, search, or ingest) as a named
// sequence of stages plus free-form annotations. A nil Trace is a valid
// disabled trace: every method is a no-op, so pipeline code threads a
// possibly-nil trace without branching. Traces are built by one
// goroutine and published only through TraceRing.Finish.
type Trace struct {
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	TotalNS int64     `json:"total_ns"`
	Stages  []Stage   `json:"stages"`
	Notes   []string  `json:"notes,omitempty"`

	begin time.Time // monotonic anchor for offsets
}

// NewTrace starts a trace anchored at the current monotonic clock.
func NewTrace(name string) *Trace {
	now := time.Now()
	return &Trace{Name: name, Start: now, begin: now}
}

// StartStage opens a stage and returns the closure that ends it; call
// it with the row count the stage produced (0 when not meaningful).
// Safe on a nil trace (the returned closure is a no-op).
func (t *Trace) StartStage(name string) func(rows int64) {
	if t == nil {
		return noopEnd
	}
	start := time.Now()
	return func(rows int64) {
		t.Stages = append(t.Stages, Stage{
			Name:     name,
			OffsetNS: start.Sub(t.begin).Nanoseconds(),
			DurNS:    time.Since(start).Nanoseconds(),
			Rows:     rows,
		})
	}
}

var noopEnd = func(int64) {}

// AddStage records an already-measured span (used when the caller timed
// the span itself). Safe on a nil trace.
func (t *Trace) AddStage(name string, start time.Time, d time.Duration, rows int64) {
	if t == nil {
		return
	}
	t.Stages = append(t.Stages, Stage{
		Name:     name,
		OffsetNS: start.Sub(t.begin).Nanoseconds(),
		DurNS:    d.Nanoseconds(),
		Rows:     rows,
	})
}

// Annotate appends a free-form note (cache hit/miss, path taken). Safe
// on a nil trace.
func (t *Trace) Annotate(note string) {
	if t == nil {
		return
	}
	t.Notes = append(t.Notes, note)
}

// TraceRing retains the slowest finished traces, capacity-bounded. It
// is not a FIFO: a finished trace is kept only if the ring has room or
// the trace is slower than the current fastest resident, which is
// evicted. /debug/tracez serves its contents. A nil TraceRing is valid
// and drops everything.
type TraceRing struct {
	mu      sync.Mutex
	cap     int
	traces  []*Trace // sorted ascending by TotalNS; traces[0] is evicted first
	offered uint64
}

// NewTraceRing returns a ring keeping the capacity slowest traces.
// Returns nil (a disabled ring) when capacity <= 0.
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		return nil
	}
	return &TraceRing{cap: capacity}
}

// Begin starts a trace destined for this ring, or nil when the ring is
// disabled — callers thread the result without checking.
func (r *TraceRing) Begin(name string) *Trace {
	if r == nil {
		return nil
	}
	return NewTrace(name)
}

// Finish stamps the trace's total duration and offers it to the ring.
// Safe when either the ring or the trace is nil.
func (r *TraceRing) Finish(t *Trace) {
	if r == nil || t == nil {
		return
	}
	t.TotalNS = time.Since(t.begin).Nanoseconds()
	r.Offer(t)
}

// Offer inserts a finished trace, evicting the fastest resident when
// full; traces faster than every resident are dropped. Safe on nil.
func (r *TraceRing) Offer(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.offered++
	if len(r.traces) >= r.cap {
		if t.TotalNS <= r.traces[0].TotalNS {
			return
		}
		copy(r.traces, r.traces[1:])
		r.traces = r.traces[:len(r.traces)-1]
	}
	i := sort.Search(len(r.traces), func(i int) bool { return r.traces[i].TotalNS > t.TotalNS })
	r.traces = append(r.traces, nil)
	copy(r.traces[i+1:], r.traces[i:])
	r.traces[i] = t
}

// Slowest returns the resident traces, slowest first. Empty on nil.
func (r *TraceRing) Slowest() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, len(r.traces))
	for i, t := range r.traces {
		out[len(out)-1-i] = t
	}
	return out
}

// Offered returns how many traces have been offered since the last
// Reset (0 on nil).
func (r *TraceRing) Offered() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.offered
}

// Reset drops all resident traces and zeroes the offered count. Safe on
// nil.
func (r *TraceRing) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.traces = nil
	r.offered = 0
}

package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketEdges pins the bucket boundaries: 0 lands in bucket
// 0, each power of two opens a new bucket, and 2^k - 1 closes one.
func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, // negative clamps to zero
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 46, 47},       // last regular bucket
		{1<<47 - 1, 47},     // still last bucket
		{1 << 47, 47},       // overflow absorbs into last bucket
		{1<<62 + 12345, 47}, // far overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}

	h := NewHistogram()
	for _, c := range cases {
		h.Observe(c.v)
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(cases))
	}
	b := h.Buckets()
	if b[0] != 2 { // -5 and 0
		t.Errorf("bucket 0 = %d, want 2", b[0])
	}
	if b[2] != 2 { // 2 and 3
		t.Errorf("bucket 2 = %d, want 2", b[2])
	}
	if b[47] != 4 { // the four largest observations
		t.Errorf("bucket 47 = %d, want 4", b[47])
	}
}

func TestBucketBound(t *testing.T) {
	if BucketBound(0) != 0 {
		t.Errorf("BucketBound(0) = %d", BucketBound(0))
	}
	if BucketBound(1) != 1 {
		t.Errorf("BucketBound(1) = %d", BucketBound(1))
	}
	if BucketBound(4) != 15 {
		t.Errorf("BucketBound(4) = %d, want 15", BucketBound(4))
	}
	// Bound of bucket i must cover every v with bucketIndex(v) == i.
	for _, v := range []int64{1, 5, 100, 1e6, 1e12} {
		i := bucketIndex(v)
		if uint64(v) > BucketBound(i) {
			t.Errorf("value %d exceeds its bucket bound %d", v, BucketBound(i))
		}
	}
}

// TestNilHandles verifies every method is a safe no-op on nil handles —
// the disabled-instrumentation contract the hot paths rely on.
func TestNilHandles(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge value")
	}
	var h *Histogram
	h.Observe(9)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram counts")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry must return nil handles")
	}
	r.GaugeFunc("x", func() int64 { return 1 })
	if err := r.WriteProm(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	if len(r.Snapshot()) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

// TestRegistryIdentity verifies handle sharing and label ordering.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs", L("ep", "/query"), L("code", "200"))
	b := r.Counter("reqs", L("code", "200"), L("ep", "/query")) // reordered labels
	if a != b {
		t.Fatal("label order must not split identities")
	}
	other := r.Counter("reqs", L("ep", "/query"), L("code", "500"))
	if a == other {
		t.Fatal("distinct label values must be distinct instruments")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatal("shared instrument did not share state")
	}
}

// TestConcurrentRegistry hammers get-or-create and mutation from many
// goroutines; run under -race this is the registry's concurrency test.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared_total").Inc()
				r.Counter("mine_total", L("w", fmt.Sprint(w%4))).Inc()
				r.Histogram("lat_nanos").Observe(int64(i))
				r.Gauge("depth").Set(int64(i))
				if i%100 == 0 {
					r.Snapshot()
					r.WriteProm(&strings.Builder{})
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*iters {
		t.Fatalf("shared_total = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat_nanos").Count(); got != workers*iters {
		t.Fatalf("lat_nanos count = %d, want %d", got, workers*iters)
	}
}

// TestWriteProm checks the text exposition: TYPE lines, cumulative
// non-empty buckets plus +Inf, sum and count series.
func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", L("layer", "evaluate")).Add(3)
	r.Gauge("entries", L("layer", "evaluate")).Set(7)
	r.GaugeFunc("capacity", func() int64 { return 4096 })
	h := r.Histogram("lat_nanos", L("stage", "probe"))
	h.Observe(0)
	h.Observe(3)
	h.Observe(3)
	h.Observe(100)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE hits_total counter",
		`hits_total{layer="evaluate"} 3`,
		"# TYPE entries gauge",
		`entries{layer="evaluate"} 7`,
		"capacity 4096",
		"# TYPE lat_nanos histogram",
		`lat_nanos_bucket{stage="probe",le="0"} 1`,
		`lat_nanos_bucket{stage="probe",le="3"} 3`,   // cumulative: 1 + 2
		`lat_nanos_bucket{stage="probe",le="127"} 4`, // 100 lands in (63,127]
		`lat_nanos_bucket{stage="probe",le="+Inf"} 4`,
		`lat_nanos_sum{stage="probe"} 106`,
		`lat_nanos_count{stage="probe"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, `le="1"`) {
		t.Errorf("empty bucket le=1 must be elided:\n%s", out)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	h := r.Histogram("lat_nanos")
	c.Add(5)
	h.Observe(10)
	before := r.Snapshot()
	c.Add(2)
	h.Observe(30)
	d := DiffSnapshots(before, r.Snapshot())
	if d["ops_total"] != 2 {
		t.Errorf("ops_total delta = %v", d["ops_total"])
	}
	if d["lat_nanos_count"] != 1 || d["lat_nanos_sum"] != 30 {
		t.Errorf("histogram deltas = %v", d)
	}
	if _, ok := d["unchanged"]; ok {
		t.Error("zero deltas must be dropped")
	}
}

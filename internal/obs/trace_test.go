package obs

import (
	"testing"
	"time"
)

// TestTraceStages verifies stage recording and the nil no-op contract.
func TestTraceStages(t *testing.T) {
	tr := NewTrace("query")
	end := tr.StartStage("probe")
	time.Sleep(time.Millisecond)
	end(42)
	tr.Annotate("path=sequential")
	tr.AddStage("rollup", time.Now(), 5*time.Millisecond, 7)
	if len(tr.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(tr.Stages))
	}
	if tr.Stages[0].Name != "probe" || tr.Stages[0].Rows != 42 {
		t.Errorf("stage 0 = %+v", tr.Stages[0])
	}
	if tr.Stages[0].DurNS <= 0 {
		t.Errorf("probe duration = %d, want > 0", tr.Stages[0].DurNS)
	}
	if tr.Stages[1].DurNS != (5 * time.Millisecond).Nanoseconds() {
		t.Errorf("rollup duration = %d", tr.Stages[1].DurNS)
	}
	if len(tr.Notes) != 1 || tr.Notes[0] != "path=sequential" {
		t.Errorf("notes = %v", tr.Notes)
	}

	var nilTr *Trace
	nilTr.StartStage("x")(1)
	nilTr.Annotate("y")
	nilTr.AddStage("z", time.Now(), 0, 0)

	var nilRing *TraceRing
	if nilRing.Begin("q") != nil {
		t.Error("nil ring must Begin nil traces")
	}
	nilRing.Finish(tr)
	nilRing.Offer(tr)
	if nilRing.Slowest() != nil || nilRing.Offered() != 0 {
		t.Error("nil ring must be empty")
	}
	nilRing.Reset()
}

// mkTrace builds a finished trace with a fixed total.
func mkTrace(name string, total int64) *Trace {
	tr := NewTrace(name)
	tr.TotalNS = total
	return tr
}

// TestTraceRingEviction pins the keep-the-slowest eviction order: when
// full, a new trace evicts the current fastest resident only if it is
// slower; otherwise it is dropped.
func TestTraceRingEviction(t *testing.T) {
	r := NewTraceRing(3)
	r.Offer(mkTrace("a", 30))
	r.Offer(mkTrace("b", 10))
	r.Offer(mkTrace("c", 20))

	// Full: {10, 20, 30}. A faster trace (5) is dropped.
	r.Offer(mkTrace("d", 5))
	got := r.Slowest()
	if len(got) != 3 || got[0].Name != "a" || got[1].Name != "c" || got[2].Name != "b" {
		t.Fatalf("after drop: %v", names(got))
	}

	// A slower trace (25) evicts the fastest resident (b, 10).
	r.Offer(mkTrace("e", 25))
	got = r.Slowest()
	if len(got) != 3 || got[0].Name != "a" || got[1].Name != "e" || got[2].Name != "c" {
		t.Fatalf("after evict: %v", names(got))
	}

	// A new slowest (99) lands at the front; c (20) is evicted.
	r.Offer(mkTrace("f", 99))
	got = r.Slowest()
	if len(got) != 3 || got[0].Name != "f" || got[1].Name != "a" || got[2].Name != "e" {
		t.Fatalf("after new slowest: %v", names(got))
	}

	if r.Offered() != 6 {
		t.Errorf("offered = %d, want 6", r.Offered())
	}
	r.Reset()
	if len(r.Slowest()) != 0 || r.Offered() != 0 {
		t.Error("reset did not clear the ring")
	}
}

// TestTraceRingFinish verifies Finish stamps a positive total and that
// NewTraceRing rejects non-positive capacities by disabling itself.
func TestTraceRingFinish(t *testing.T) {
	if NewTraceRing(0) != nil || NewTraceRing(-1) != nil {
		t.Fatal("capacity <= 0 must return a nil (disabled) ring")
	}
	r := NewTraceRing(2)
	tr := r.Begin("query")
	if tr == nil {
		t.Fatal("Begin returned nil on a live ring")
	}
	time.Sleep(time.Millisecond)
	r.Finish(tr)
	got := r.Slowest()
	if len(got) != 1 || got[0].TotalNS <= 0 {
		t.Fatalf("finish: %v", names(got))
	}
}

func names(ts []*Trace) []string {
	out := make([]string, len(ts))
	for i, tr := range ts {
		out[i] = tr.Name
	}
	return out
}

// Package obs is the catalog's observability substrate: a dependency-free
// metrics registry (counters, gauges, log-scale histograms) with
// Prometheus-style text and JSON exposition, and a per-query trace
// recorder that stamps the Figure-4 pipeline stages with monotonic
// timings (see trace.go).
//
// Instrument handles are nil-safe: every method on a nil *Counter,
// *Gauge, *Histogram, *Trace, or *TraceRing is a no-op, so a layer holds
// plain handle fields and skips all branching — a catalog opened without
// a Registry pays only a nil check per event. Handles obtained from a
// Registry are stable: the first Counter/Gauge/Histogram call for a
// (name, labels) identity creates the instrument, later calls return the
// same one, so hot paths resolve their handles once and never touch the
// registry maps again.
//
// Metric naming follows the Prometheus conventions documented in
// DESIGN.md "Observability": snake_case families, monotonic counters
// end in _total, histograms of durations end in _nanos and use
// power-of-two bucket boundaries.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of an instrument identity.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is ready
// to use; a nil Counter is a valid disabled counter.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a counter detached from any registry.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable signed value. The zero value is ready to use; a
// nil Gauge is a valid disabled gauge.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a gauge detached from any registry.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistogramBuckets is the fixed number of histogram buckets. Bucket i
// holds observations v with bits.Len64(v) == i, i.e. bucket 0 holds 0,
// bucket i>0 holds [2^(i-1), 2^i - 1]; the last bucket also absorbs
// everything larger. 48 buckets cover nanosecond durations up to ~39
// hours, far beyond any span the catalog records.
const HistogramBuckets = 48

// Histogram counts observations in fixed power-of-two buckets. It is
// designed for int64 nanosecond durations and row counts: Observe is a
// few atomic adds, with no locks and no allocation. The zero value is
// ready to use; a nil Histogram is a valid disabled histogram.
type Histogram struct {
	counts [HistogramBuckets]atomic.Uint64
	sum    atomic.Int64
	count  atomic.Uint64
}

// NewHistogram returns a histogram detached from any registry.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps an observation to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= HistogramBuckets {
		i = HistogramBuckets - 1
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i: 0 for
// bucket 0, 2^i - 1 for i > 0.
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 for a nil histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns the per-bucket counts (all zero for a nil histogram).
func (h *Histogram) Buckets() [HistogramBuckets]uint64 {
	var out [HistogramBuckets]uint64
	if h == nil {
		return out
	}
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// instrument kinds.
const (
	kindCounter = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// instrument is one registered (name, labels) identity.
type instrument struct {
	name   string
	labels []Label
	id     string // rendered name{labels} identity
	kind   int
	c      *Counter
	g      *Gauge
	gf     func() int64
	h      *Histogram
}

const regShards = 16

// regShard is one lock-striped slice of the registry.
type regShard struct {
	mu   sync.RWMutex
	ents map[string]*instrument
}

// Registry is a sharded, concurrency-safe collection of instruments.
// Lookups get-or-create: two callers asking for the same (name, labels)
// identity share one instrument. A nil *Registry is a valid disabled
// registry — every method returns a nil (disabled) handle.
type Registry struct {
	shards [regShards]regShard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].ents = make(map[string]*instrument)
	}
	return r
}

// identity renders the canonical name{k="v",...} key. Labels are sorted
// by key so the order callers pass them in does not split identities.
func identity(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// fnv1a hashes the identity for shard selection.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// get returns the instrument for id, or nil.
func (r *Registry) get(id string) *instrument {
	sh := &r.shards[fnv1a(id)%regShards]
	sh.mu.RLock()
	ins := sh.ents[id]
	sh.mu.RUnlock()
	return ins
}

// getOrCreate returns the instrument for (name, labels), creating it
// with mk on first use. A kind mismatch with an existing registration
// panics: it is a programming error, never data-dependent.
func (r *Registry) getOrCreate(name string, labels []Label, kind int, mk func(id string, ls []Label) *instrument) *instrument {
	id := identity(name, labels)
	if ins := r.get(id); ins != nil {
		if ins.kind != kind {
			panic("obs: instrument " + id + " re-registered with a different kind")
		}
		return ins
	}
	sh := &r.shards[fnv1a(id)%regShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ins := sh.ents[id]; ins != nil {
		if ins.kind != kind {
			panic("obs: instrument " + id + " re-registered with a different kind")
		}
		return ins
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	ins := mk(id, ls)
	ins.name, ins.labels, ins.id, ins.kind = name, ls, id, kind
	sh.ents[id] = ins
	return ins
}

// Counter returns the shared counter for (name, labels), creating it on
// first use. Returns nil (a disabled counter) on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, labels, kindCounter, func(string, []Label) *instrument {
		return &instrument{c: NewCounter()}
	}).c
}

// Gauge returns the shared gauge for (name, labels), creating it on
// first use. Returns nil (a disabled gauge) on a nil registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, labels, kindGauge, func(string, []Label) *instrument {
		return &instrument{g: NewGauge()}
	}).g
}

// GaugeFunc registers fn as a gauge sampled at exposition time. A second
// registration for the same identity replaces the callback. No-op on a
// nil registry.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	ins := r.getOrCreate(name, labels, kindGaugeFunc, func(string, []Label) *instrument {
		return &instrument{}
	})
	sh := &r.shards[fnv1a(ins.id)%regShards]
	sh.mu.Lock()
	ins.gf = fn
	sh.mu.Unlock()
}

// Histogram returns the shared histogram for (name, labels), creating it
// on first use. Returns nil (a disabled histogram) on a nil registry.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, labels, kindHistogram, func(string, []Label) *instrument {
		return &instrument{h: NewHistogram()}
	}).h
}

// gaugeFuncValue samples a GaugeFunc under the shard read lock.
func (r *Registry) gaugeFuncValue(ins *instrument) int64 {
	sh := &r.shards[fnv1a(ins.id)%regShards]
	sh.mu.RLock()
	fn := ins.gf
	sh.mu.RUnlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// all returns every instrument sorted by identity.
func (r *Registry) all() []*instrument {
	var out []*instrument
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, ins := range sh.ents {
			out = append(out, ins)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// labelPrefix renders the non-le labels of an instrument for a
// histogram series, ready to be extended with an le pair.
func labelPrefix(ls []Label) string {
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// WriteProm renders the Prometheus text exposition format (version
// 0.0.4): one # TYPE line per family, counter/gauge samples as
// name{labels} value, histograms as cumulative _bucket series over the
// non-empty power-of-two bounds plus +Inf, with _sum and _count.
// No-op on a nil registry.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	typed := make(map[string]bool)
	for _, ins := range r.all() {
		if !typed[ins.name] {
			typed[ins.name] = true
			t := "gauge"
			switch ins.kind {
			case kindCounter:
				t = "counter"
			case kindHistogram:
				t = "histogram"
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", ins.name, t)
		}
		switch ins.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", ins.id, ins.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %d\n", ins.id, ins.g.Value())
		case kindGaugeFunc:
			fmt.Fprintf(&b, "%s %d\n", ins.id, r.gaugeFuncValue(ins))
		case kindHistogram:
			prefix := labelPrefix(ins.labels)
			if prefix != "" {
				prefix += ","
			}
			counts := ins.h.Buckets()
			var cum uint64
			for i, c := range counts {
				cum += c
				if c == 0 {
					continue
				}
				fmt.Fprintf(&b, "%s_bucket{%sle=\"%d\"} %d\n", ins.name, prefix, BucketBound(i), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=\"+Inf\"} %d\n", ins.name, prefix, cum)
			fmt.Fprintf(&b, "%s_sum{%s} %d\n", ins.name, labelPrefix(ins.labels), ins.h.Sum())
			fmt.Fprintf(&b, "%s_count{%s} %d\n", ins.name, labelPrefix(ins.labels), ins.h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// HistogramState is the JSON rendering of one histogram.
type HistogramState struct {
	Count   uint64            `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets map[string]uint64 `json:"buckets,omitempty"` // upper bound -> count (non-cumulative)
}

// State is the JSON rendering of the registry: identity -> value for
// counters and gauges, identity -> HistogramState for histograms.
type State struct {
	Counters   map[string]uint64         `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramState `json:"histograms,omitempty"`
}

// Export captures the registry as a State (empty on a nil registry).
func (r *Registry) Export() State {
	st := State{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramState{},
	}
	if r == nil {
		return st
	}
	for _, ins := range r.all() {
		switch ins.kind {
		case kindCounter:
			st.Counters[ins.id] = ins.c.Value()
		case kindGauge:
			st.Gauges[ins.id] = ins.g.Value()
		case kindGaugeFunc:
			st.Gauges[ins.id] = r.gaugeFuncValue(ins)
		case kindHistogram:
			hs := HistogramState{Count: ins.h.Count(), Sum: ins.h.Sum(), Buckets: map[string]uint64{}}
			for i, c := range ins.h.Buckets() {
				if c != 0 {
					hs.Buckets[fmt.Sprint(BucketBound(i))] = c
				}
			}
			st.Histograms[ins.id] = hs
		}
	}
	return st
}

// WriteJSON renders the registry as indented JSON. No-op on nil.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Export())
}

// Snapshot flattens the registry into identity -> float64, with
// histograms contributing identity_count and identity_sum entries. Bench
// harnesses diff two snapshots to attach instrument deltas to a run.
// Empty on a nil registry.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	for _, ins := range r.all() {
		switch ins.kind {
		case kindCounter:
			out[ins.id] = float64(ins.c.Value())
		case kindGauge:
			out[ins.id] = float64(ins.g.Value())
		case kindGaugeFunc:
			out[ins.id] = float64(r.gaugeFuncValue(ins))
		case kindHistogram:
			out[ins.id+"_count"] = float64(ins.h.Count())
			out[ins.id+"_sum"] = float64(ins.h.Sum())
		}
	}
	return out
}

// DiffSnapshots returns after-minus-before for every key in after,
// dropping zero deltas. Keys absent from before count from zero.
func DiffSnapshots(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

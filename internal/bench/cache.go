package bench

import (
	"fmt"
	"slices"
	"time"

	"github.com/gridmeta/hybridcat/internal/baseline"
	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/workload"
)

// C2CacheEffect measures the generation-stamped read caches across three
// workloads:
//
//   - cold: one pass over distinct queries against fresh stores — the
//     caches are empty, so this bounds the caching overhead on misses,
//   - warm: repeated passes over the same query mix — the cached store
//     answers from the evaluate layer while the uncached store re-runs
//     the full Figure-4 pipeline every time,
//   - mutating: the same stream with an ingest every few queries — every
//     mutation bumps the generation, so the cached store keeps
//     re-deriving current results instead of serving stale ones.
//
// An untimed oracle pass runs the mutating stream in lockstep on a
// cached and an uncached catalog and requires identical IDs and fetched
// XML at every step: the cache may only ever change latency, never
// results. The CLOB-only baseline anchors the absolute numbers.
func C2CacheEffect(o Options) (*Table, error) {
	t := &Table{
		ID:      "C2",
		Title:   "read caching: cold vs warm vs mutating workloads",
		Claim:   "generation-stamped caching turns repeated warm queries into O(1) lookups, while mutations invalidate with a single counter bump and never serve stale results",
		Columns: []string{"workload", "store", "ops", "wall", "per-op", "speedup"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(300)
	g := workload.New(cfg)
	docs := g.Corpus()

	// The same pipeline-covering query mix as C1.
	var queries []*catalog.Query
	for i := 0; i < 32; i++ {
		switch i % 5 {
		case 0:
			queries = append(queries, g.PointQuery(i, i, i))
		case 1:
			queries = append(queries, g.RangeQuery(i, i+1, 0.4))
		case 2:
			queries = append(queries, g.NestedQuery(i, i, 1+i%2))
		case 3:
			queries = append(queries, g.ThemeQuery(i))
		case 4:
			queries = append(queries, g.MultiQuery(i, 2))
		}
	}

	openHybrid := func(opts catalog.Options) (*catalog.Catalog, error) {
		c, err := catalog.Open(g.Schema, opts)
		if err != nil {
			return nil, err
		}
		if err := g.RegisterDefinitions(c); err != nil {
			return nil, err
		}
		for _, d := range docs {
			if _, err := c.Ingest("bench", d); err != nil {
				return nil, err
			}
		}
		return c, nil
	}

	cachedCat, err := openHybrid(catalog.Options{})
	if err != nil {
		return nil, err
	}
	uncachedCat, err := openHybrid(catalog.Options{DisableCache: true})
	if err != nil {
		return nil, err
	}
	clob, _, err := loadStore(KindClob, g, docs, o)
	if err != nil {
		return nil, err
	}
	stores := []struct {
		label string
		st    baseline.Store
	}{
		{"hybrid+cache", baseline.Adapter{C: cachedCat}},
		{"hybrid", baseline.Adapter{C: uncachedCat}},
		{"clob", clob},
	}

	evalN := func(st baseline.Store, n int) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := st.Evaluate(queries[i%len(queries)]); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	addRows := func(wl string, ops int, walls []time.Duration) {
		base := walls[1] // hybrid without cache is the speedup baseline
		for i, s := range stores {
			perOp := walls[i] / time.Duration(ops)
			t.AddRow(wl, s.label, ops, walls[i], perOp, ratio(int64(base), int64(walls[i])))
		}
	}

	// Cold: one pass over the distinct queries, caches empty.
	cold := make([]time.Duration, len(stores))
	for i, s := range stores {
		if cold[i], err = evalN(s.st, len(queries)); err != nil {
			return nil, err
		}
	}
	addRows("cold", len(queries), cold)

	// Warm: the caches now hold every query in the mix.
	warmOps := o.scale(400)
	warm := make([]time.Duration, len(stores))
	for i, s := range stores {
		if warm[i], err = evalN(s.st, warmOps); err != nil {
			return nil, err
		}
	}
	addRows("warm", warmOps, warm)

	// Warm response builds: repeatedly fetch the documents of one result
	// set; the cached store serves the §5 reconstruction per object from
	// the response layer.
	fetchIDs, err := stores[0].st.Evaluate(queries[3]) // a theme query with matches
	if err != nil {
		return nil, err
	}
	fetchOps := o.scale(200)
	warmFetch := make([]time.Duration, len(stores))
	for i, s := range stores {
		start := time.Now()
		for n := 0; n < fetchOps; n++ {
			if _, err := s.st.Fetch(fetchIDs); err != nil {
				return nil, err
			}
		}
		warmFetch[i] = time.Since(start)
	}
	addRows("warm-fetch", fetchOps, warmFetch)

	// Mutating: one ingest per mutateEvery queries. The generation bump
	// invalidates every layer, so the cached store's advantage shrinks to
	// what repeats between mutations.
	const mutateEvery = 8
	mutOps := o.scale(400)
	mut := make([]time.Duration, len(stores))
	for i, s := range stores {
		docSeq := cfg.Docs + i*mutOps // distinct fresh docs per store
		start := time.Now()
		for n := 0; n < mutOps; n++ {
			if n%mutateEvery == mutateEvery-1 {
				if _, err := s.st.Ingest("bench", g.Document(docSeq)); err != nil {
					return nil, err
				}
				docSeq++
			}
			if _, err := s.st.Evaluate(queries[n%len(queries)]); err != nil {
				return nil, err
			}
		}
		mut[i] = time.Since(start)
	}
	addRows("mutating", mutOps, mut)

	// Oracle: fresh cached and uncached catalogs run the mutating stream
	// in lockstep; IDs and rebuilt XML must agree at every step.
	oc, err := openHybrid(catalog.Options{})
	if err != nil {
		return nil, err
	}
	ou, err := openHybrid(catalog.Options{DisableCache: true})
	if err != nil {
		return nil, err
	}
	oracleOps := o.scale(200)
	docSeq := 10 * cfg.Docs
	for n := 0; n < oracleOps; n++ {
		if n%mutateEvery == mutateEvery-1 {
			d := g.Document(docSeq)
			docSeq++
			if _, err := oc.Ingest("bench", d); err != nil {
				return nil, err
			}
			if _, err := ou.Ingest("bench", d); err != nil {
				return nil, err
			}
		}
		q := queries[n%len(queries)]
		got, err := oc.Evaluate(q)
		if err != nil {
			return nil, err
		}
		want, err := ou.Evaluate(q)
		if err != nil {
			return nil, err
		}
		if !slices.Equal(got, want) {
			return nil, fmt.Errorf("bench C2: stale cached result at step %d: %v != %v", n, got, want)
		}
		if n%16 == 0 && len(want) > 0 {
			gr, err := oc.BuildResponse(want[:1])
			if err != nil {
				return nil, err
			}
			wr, err := ou.BuildResponse(want[:1])
			if err != nil {
				return nil, err
			}
			if len(gr) != len(wr) || (len(gr) == 1 && gr[0].XML != wr[0].XML) {
				return nil, fmt.Errorf("bench C2: stale cached response at step %d", n)
			}
		}
	}

	st := cachedCat.CacheStats()
	t.Notes = append(t.Notes,
		fmt.Sprintf("oracle: %d lockstep steps with interleaved ingests, cached and uncached results identical throughout", oracleOps),
		fmt.Sprintf("cached store counters: evaluate %d hits/%d misses/%d stale, probe %d hits, response %d hits, %d singleflight collapses",
			st.Evaluate.Hits, st.Evaluate.Misses, st.Evaluate.Stale, st.Probe.Hits, st.Response.Hits,
			st.Evaluate.Collapses+st.Resolve.Collapses+st.Probe.Collapses),
		"expected shape: warm hybrid+cache is several times faster than uncached hybrid; mutating narrows the gap; cold is a wash")
	return t, nil
}

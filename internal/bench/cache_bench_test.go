package bench

import (
	"testing"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/workload"
)

// benchCatalog builds a small loaded catalog for micro-benchmarks.
func benchCatalog(b *testing.B, opts catalog.Options) (*catalog.Catalog, *workload.Generator) {
	b.Helper()
	cfg := workload.Default()
	cfg.Docs = 60
	g := workload.New(cfg)
	c, err := catalog.Open(g.Schema, opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := g.RegisterDefinitions(c); err != nil {
		b.Fatal(err)
	}
	for _, d := range g.Corpus() {
		if _, err := c.Ingest("bench", d); err != nil {
			b.Fatal(err)
		}
	}
	return c, g
}

// BenchmarkEvaluateWarmCached measures a repeated query answered by the
// generation-stamped evaluate cache.
func BenchmarkEvaluateWarmCached(b *testing.B) {
	c, g := benchCatalog(b, catalog.Options{})
	q := g.PointQuery(0, 0, 0)
	if _, err := c.Evaluate(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Evaluate(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateUncached measures the same repeated query with the
// caches disabled — the full Figure-4 pipeline every iteration.
func BenchmarkEvaluateUncached(b *testing.B) {
	c, g := benchCatalog(b, catalog.Options{DisableCache: true})
	q := g.PointQuery(0, 0, 0)
	if _, err := c.Evaluate(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Evaluate(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResponseBuildWarmCached measures rebuilding one object's
// document with the response layer warm.
func BenchmarkResponseBuildWarmCached(b *testing.B) {
	c, g := benchCatalog(b, catalog.Options{})
	ids, err := c.Evaluate(g.ThemeQuery(3))
	if err != nil || len(ids) == 0 {
		b.Fatalf("no seed results: %v %v", ids, err)
	}
	if _, err := c.BuildResponse(ids[:1]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.BuildResponse(ids[:1]); err != nil {
			b.Fatal(err)
		}
	}
}

package bench

import (
	"fmt"
	"sort"
	"time"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/workload"
)

// B1BitmapSetOps measures what the compressed-bitmap Figure-4 pipeline
// buys on multi-criterion queries whose individual criteria are wide
// (each matches a large slice of the corpus) so the per-query cost is
// dominated by combining big instance sets, not by finding them. Two
// otherwise-identical catalogs answer the same pooled-criteria query
// stream:
//
//   - bitmap: the shipped pipeline — criterion probes emit compressed
//     posting lists straight off the B-tree, predicates and the
//     cross-criteria stage combine them with word-at-a-time ANDs
//     ordered by ascending cardinality;
//   - rows: the oracle path (Options.DisableBitmaps) — instance rows
//     flow through volcano iterators and group-by counting maps.
//
// Cells cover cold (caches off: every query pays probe + set ops) and
// warm (criterion probes memoized; each measured query is a fresh
// combination, so the evaluate layer misses and the set operations
// themselves are what's timed — the probe-cache-hit steady state of a
// busy catalog). Every measured query is a distinct 3-criterion
// combination drawn from one shared criterion pool.
//
// Each catalog carries a private metrics registry; the per-path
// query_stage_nanos{stage=intersect} totals land in the notes — the
// same per-stage numbers /debug/tracez shows per query.
func B1BitmapSetOps(o Options) (*Table, error) {
	t := &Table{
		ID:      "B1",
		Title:   "bitmap posting lists: multi-criterion set ops vs row-at-a-time",
		Claim:   "replacing per-row map materialization between the Figure-4 stages with compressed bitmap ANDs makes wide multi-criterion queries >= 3x faster, most visibly once probes are cache-warm and set combination is the remaining cost",
		Columns: []string{"path", "cache", "queries", "p50", "p95", "qps"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(1000)
	g := workload.New(cfg)
	docs := g.Corpus()

	// The criterion pool — every entry deliberately wide (matches a
	// large fraction of the corpus) so the cross-criteria combination,
	// not the probe, dominates: range predicates at distinct thresholds
	// over every dynamic (group, param) pair, structural keyword
	// criteria, and the themekt/OpGe pair of the standard multi-criteria
	// mix. Reusing the workload builders keeps the criteria identical to
	// the other experiments' query shapes.
	var pool []*catalog.AttrCriteria
	for gi := 0; gi < cfg.DynamicAttrsPerDoc; gi++ {
		for pi := 0; pi < cfg.ParamsPerAttr; pi++ {
			// pi wraps at paramsPerLevel inside RangeQuery; the per-pi
			// threshold keeps the wrapped entries distinct criteria.
			frac := 0.4 + 0.1*float64(pi)
			pool = append(pool, g.RangeQuery(gi, pi, frac).Attrs[0])
		}
	}
	for i := 0; i < 4; i++ {
		pool = append(pool, g.ThemeQuery(i).Attrs[0])
	}
	pool = append(pool, g.MultiQuery(0, 2).Attrs...)
	pool = append(pool, g.MultiQuery(1, 2).Attrs[1:]...)

	// All distinct 3-criterion combinations, then a fixed-stride walk so
	// consecutive measured queries mix range, keyword, and OpGe criteria
	// instead of exhausting one region of the lexicographic order. Warm
	// cells consume fresh combinations per repetition so the whole-query
	// evaluate cache never answers; only the criterion probes are shared
	// with earlier queries.
	var allCombos []*catalog.Query
	for a := 0; a < len(pool); a++ {
		for b := a + 1; b < len(pool); b++ {
			for c := b + 1; c < len(pool); c++ {
				q := &catalog.Query{}
				q.Attrs = []*catalog.AttrCriteria{pool[a], pool[b], pool[c]}
				allCombos = append(allCombos, q)
			}
		}
	}
	const stride = 997 // prime, coprime with C(25,3); visits each combo once
	combos := make([]*catalog.Query, len(allCombos))
	for j := range allCombos {
		combos[j] = allCombos[(j*stride)%len(allCombos)]
	}

	reps, perRep := o.runs(), 12
	need := perRep + reps*perRep // cold reuses one block; warm burns a fresh block per rep

	type pathCell struct {
		label   string
		disable bool
	}
	paths := []pathCell{{"bitmap", false}, {"rows", true}}

	load := func(opts catalog.Options, reg *obs.Registry) (*catalog.Catalog, error) {
		opts.Metrics = reg
		c, err := catalog.Open(g.Schema, opts)
		if err != nil {
			return nil, err
		}
		if err := g.RegisterDefinitions(c); err != nil {
			return nil, err
		}
		for _, d := range docs {
			if _, err := c.Ingest("bench", d); err != nil {
				return nil, err
			}
		}
		return c, nil
	}

	// The workload's parameter values are linear in the document index
	// modulo ValueCardinality, so values across groups are perfectly
	// correlated and a handful of window intersections are genuinely
	// empty. Screen the combination stream down to non-empty queries on
	// the cache-disabled bitmap catalog (nothing is retained, so the
	// cold cell it is reused for stays cold).
	coldBMReg := obs.NewRegistry()
	coldBM, err := load(catalog.Options{DisableCache: true}, coldBMReg)
	if err != nil {
		return nil, err
	}
	picked := make([]*catalog.Query, 0, need)
	for _, q := range combos {
		if len(picked) == need {
			break
		}
		ids, err := coldBM.Evaluate(q)
		if err != nil {
			return nil, err
		}
		if len(ids) > 0 {
			picked = append(picked, q)
		}
	}
	if len(picked) < need {
		return nil, fmt.Errorf("bench B1: only %d/%d combinations matched anything", len(picked), need)
	}
	combos = picked

	timeQueries := func(c *catalog.Catalog, qs []*catalog.Query) ([]time.Duration, error) {
		lats := make([]time.Duration, 0, len(qs))
		for _, q := range qs {
			start := time.Now()
			ids, err := c.Evaluate(q)
			if err != nil {
				return nil, err
			}
			lats = append(lats, time.Since(start))
			if len(ids) == 0 {
				return nil, fmt.Errorf("bench B1: wide query matched nothing — workload drifted")
			}
		}
		return lats, nil
	}

	stats := func(lats []time.Duration, wall time.Duration) (p50, p95 time.Duration, qps float64) {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		at := func(p float64) time.Duration {
			i := int(p * float64(len(lats)))
			if i >= len(lats) {
				i = len(lats) - 1
			}
			return lats[i]
		}
		return at(0.50), at(0.95), float64(len(lats)) / wall.Seconds()
	}

	p50s := map[string]time.Duration{}
	intersectNanos := map[string]float64{}

	for _, pc := range paths {
		// Cold: caches off, so every evaluation pays resolve, probe, and
		// set combination against the base tables.
		c := coldBM
		if pc.disable {
			var err error
			c, err = load(catalog.Options{DisableBitmaps: true, DisableCache: true}, obs.NewRegistry())
			if err != nil {
				return nil, err
			}
		}
		var lats []time.Duration
		var wall time.Duration
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			l, err := timeQueries(c, combos[:perRep])
			if err != nil {
				return nil, err
			}
			wall += time.Since(start)
			lats = append(lats, l...)
		}
		p50, p95, qps := stats(lats, wall)
		t.AddRow(pc.label, "cold", len(lats), p50, p95, fmt.Sprintf("%.0f", qps))
		p50s[pc.label+"/cold"] = p50

		// Warm: pre-touch every pooled criterion once so the probe layer
		// (postings for bitmap, row slices for rows) is hot, then time
		// never-before-seen combinations.
		regW := obs.NewRegistry()
		cw, err := load(catalog.Options{DisableBitmaps: pc.disable}, regW)
		if err != nil {
			return nil, err
		}
		for _, crit := range pool {
			wq := &catalog.Query{Attrs: []*catalog.AttrCriteria{crit}}
			if _, err := cw.Evaluate(wq); err != nil {
				return nil, err
			}
		}
		intersectBefore := regW.Histogram("query_stage_nanos", obs.L("stage", "intersect")).Sum()
		lats = lats[:0]
		wall = 0
		for rep := 0; rep < reps; rep++ {
			qs := combos[perRep+rep*perRep : perRep+(rep+1)*perRep]
			start := time.Now()
			l, err := timeQueries(cw, qs)
			if err != nil {
				return nil, err
			}
			wall += time.Since(start)
			lats = append(lats, l...)
		}
		intersectAfter := regW.Histogram("query_stage_nanos", obs.L("stage", "intersect")).Sum()
		p50, p95, qps = stats(lats, wall)
		t.AddRow(pc.label, "warm", len(lats), p50, p95, fmt.Sprintf("%.0f", qps))
		p50s[pc.label+"/warm"] = p50
		intersectNanos[pc.label] = float64(intersectAfter-intersectBefore) / float64(len(lats))
	}

	if rp := p50s["rows/warm"]; rp > 0 && p50s["bitmap/warm"] > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"warm multi-criterion p50: bitmap %s vs rows %s = %.1fx speedup (target >= 3x): probes memoized, so set combination is the measured cost",
			fmtDuration(p50s["bitmap/warm"]), fmtDuration(rp),
			float64(rp)/float64(p50s["bitmap/warm"])))
	}
	if rp := p50s["rows/cold"]; rp > 0 && p50s["bitmap/cold"] > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"cold p50: bitmap %s vs rows %s = %.1fx (both paths pay the B-tree probes; the bitmap path additionally skips the per-row group-by maps)",
			fmtDuration(p50s["bitmap/cold"]), fmtDuration(rp),
			float64(rp)/float64(p50s["bitmap/cold"])))
	}
	if intersectNanos["rows"] > 0 && intersectNanos["bitmap"] > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"intersect stage (query_stage_nanos{stage=intersect}, warm, per query): bitmap %s vs rows %s = %.1fx smaller — the same per-stage spans /debug/tracez reports",
			fmtDuration(time.Duration(intersectNanos["bitmap"])),
			fmtDuration(time.Duration(intersectNanos["rows"])),
			intersectNanos["rows"]/intersectNanos["bitmap"]))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d docs, %d pooled criteria, %d screened non-empty 3-criterion combinations; every criterion is wide (range fracs 0.4-0.9, OpGe 0, keyword equality), so per-criterion posting lists hold hundreds-to-thousands of instances",
		len(docs), len(pool), len(combos)))
	return t, nil
}

package bench

import (
	"fmt"
	"sort"
	"time"

	"github.com/gridmeta/hybridcat/internal/baseline"
	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/workload"
)

// O1MetricsOverhead measures what the observability layer costs on the
// hot read path: the C1 single-threaded query stream runs against two
// otherwise-identical catalogs, one with no registry (every instrument
// handle nil, so each counter update is a single nil check) and one
// with the full registry plus the slow-query trace ring attached. The
// read caches are off in both, as in C1, so every query exercises the
// instrumented Figure-4 pipeline instead of a cache hit.
//
// The claim to verify (and record in EXPERIMENTS.md) is that the
// instrumented run stays within ~5% of the uninstrumented one.
func O1MetricsOverhead(o Options) (*Table, error) {
	t := &Table{
		ID:      "O1",
		Title:   "observability overhead: metrics+tracing on vs off",
		Claim:   "atomic counters and the slow-trace ring add at most a few percent to single-threaded query latency",
		Columns: []string{"config", "queries", "wall", "per-query", "vs off"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(300)
	g := workload.New(cfg)
	docs := g.Corpus()

	var queries []*catalog.Query
	for i := 0; i < 32; i++ {
		switch i % 5 {
		case 0:
			queries = append(queries, g.PointQuery(i, i, i))
		case 1:
			queries = append(queries, g.RangeQuery(i, i+1, 0.4))
		case 2:
			queries = append(queries, g.NestedQuery(i, i, 1+i%2))
		case 3:
			queries = append(queries, g.ThemeQuery(i))
		case 4:
			queries = append(queries, g.MultiQuery(i, 2))
		}
	}
	total := o.scale(400)

	open := func(opts catalog.Options) (baseline.Store, error) {
		opts.DisableCache = true
		c, err := catalog.Open(g.Schema, opts)
		if err != nil {
			return nil, err
		}
		if err := g.RegisterDefinitions(c); err != nil {
			return nil, err
		}
		for _, d := range docs {
			if _, err := c.Ingest("bench", d); err != nil {
				return nil, err
			}
		}
		return baseline.Adapter{C: c}, nil
	}
	stream := func(st baseline.Store) func() error {
		return func() error {
			for i := 0; i < total; i++ {
				if _, err := st.Evaluate(queries[i%len(queries)]); err != nil {
					return err
				}
			}
			return nil
		}
	}

	off, err := open(catalog.Options{})
	if err != nil {
		return nil, err
	}
	// The instrumented arm publishes into the harness registry when one
	// was provided (mdbench -instruments), so the exported table carries
	// the counter deltas the run produced.
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	on, err := open(catalog.Options{Metrics: reg})
	if err != nil {
		return nil, err
	}

	// Interleave the two arms run-by-run so clock drift and background
	// load hit both equally; each arm's median is over its own samples.
	offWall, onWall, err := medianInterleaved(o.runs(), stream(off), stream(on))
	if err != nil {
		return nil, err
	}
	t.AddRow("metrics off", total, offWall, offWall/time.Duration(total), "1.00x")
	t.AddRow("metrics+tracing on", total, onWall, onWall/time.Duration(total),
		ratio(int64(onWall), int64(offWall)))
	overhead := (float64(onWall)/float64(offWall) - 1) * 100
	t.Notes = append(t.Notes,
		fmt.Sprintf("instrumentation overhead: %+.1f%% single-threaded (target <= 5%%)", overhead),
		fmt.Sprintf("instrumented run recorded %.0f criterion-probe observations and kept the %d slowest traces",
			reg.Snapshot()["query_stage_nanos{stage=\"probe\"}_count"], catalog.DefaultTraceDepth))
	return t, nil
}

// medianInterleaved times a and b alternately (after one warmup each)
// and returns each arm's median, so slow machine-wide drift cannot bias
// the comparison toward whichever arm ran second.
func medianInterleaved(runs int, a, b func() error) (time.Duration, time.Duration, error) {
	if err := a(); err != nil {
		return 0, 0, err
	}
	if err := b(); err != nil {
		return 0, 0, err
	}
	at := make([]time.Duration, 0, runs)
	bt := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := a(); err != nil {
			return 0, 0, err
		}
		at = append(at, time.Since(start))
		start = time.Now()
		if err := b(); err != nil {
			return 0, 0, err
		}
		bt = append(bt, time.Since(start))
	}
	sort.Slice(at, func(i, j int) bool { return at[i] < at[j] })
	sort.Slice(bt, func(i, j int) bool { return bt[i] < bt[j] })
	return at[len(at)/2], bt[len(bt)/2], nil
}

package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/shard"
	"github.com/gridmeta/hybridcat/internal/workload"
)

// S1ShardScaling measures the sharded cluster against the same workload
// on 1, 2, and 4 shards:
//
//   - ingest: concurrent writers spread a many-owner corpus across the
//     cluster; owner-hash routing means writers on different owners
//     contend on different shard instances instead of one write lock.
//   - routed queries: owner-scoped reads route to exactly one shard, so
//     each query evaluates against 1/N of the corpus — throughput should
//     grow with the shard count even on a single core.
//   - fan-out queries: superuser reads scatter to every shard and merge,
//     so per-query work stays roughly constant in N; this row bounds
//     what sharding costs when routing cannot help.
//
// Everything runs on in-memory filesystems with the read caches off, so
// the numbers isolate routing and evaluation rather than fsync or cache
// hits (those are experiments R1/R2 and C2).
func S1ShardScaling(o Options) (*Table, error) {
	t := &Table{
		ID:      "S1",
		Title:   "owner-hash sharding: throughput vs shard count",
		Claim:   "owner-routed queries touch one shard and 1/N of the data, so routed throughput scales with shards; fan-out queries pay a merge and stay flat",
		Columns: []string{"phase", "shards", "workers", "ops", "wall", "qps", "speedup"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(400)
	g := workload.New(cfg)
	docs := g.Corpus()

	const owners = 16
	owner := func(i int) string { return fmt.Sprintf("owner-%02d", i%owners) }

	// The query mix cycles the workload's shapes; every query is scoped
	// to one owner so the router sends it to exactly one shard. The
	// fan-out phase reuses the same mix with the owner cleared.
	type ownerQuery struct {
		owner string
		q     *catalog.Query
	}
	var routed []ownerQuery
	for i := 0; i < 32; i++ {
		var q *catalog.Query
		switch i % 4 {
		case 0:
			q = g.PointQuery(i, i, i)
		case 1:
			q = g.RangeQuery(i, i+1, 0.4)
		case 2:
			q = g.ThemeQuery(i)
		case 3:
			q = g.MultiQuery(i, 2)
		}
		q.Owner = owner(i)
		routed = append(routed, ownerQuery{owner: owner(i), q: q})
	}

	open := func(n int) (*shard.Cluster, error) {
		cl, err := shard.Open(shard.Options{
			Schema:     g.Schema,
			Root:       fmt.Sprintf("s1-%d", n),
			Shards:     n,
			Catalog:    catalog.Options{DisableCache: true},
			Durability: catalog.DurabilityOptions{FS: faultio.NewMemFS()},
		})
		if err != nil {
			return nil, err
		}
		if err := cl.ForEachShard(func(_ int, c *catalog.Catalog) error {
			return g.RegisterDefinitions(c)
		}); err != nil {
			cl.Close()
			return nil, err
		}
		return cl, nil
	}

	const workers = 8
	queryTotal := o.scale(400)

	// run fans total ops across the worker pool and times the sweep.
	run := func(total int, op func(i int) error) (time.Duration, error) {
		next := make(chan int, total)
		for i := 0; i < total; i++ {
			next <- i
		}
		close(next)
		errs := make([]error, workers)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := range next {
					if err := op(i); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return wall, nil
	}

	baseQPS := map[string]float64{}
	addRow := func(phase string, shards, ops int, wall time.Duration) {
		qps := float64(ops) / wall.Seconds()
		speedup := "1.00x"
		if base, ok := baseQPS[phase]; ok {
			speedup = fmt.Sprintf("%.2fx", qps/base)
		} else {
			baseQPS[phase] = qps
		}
		t.AddRow(phase, shards, workers, ops, wall, fmt.Sprintf("%.0f", qps), speedup)
	}

	for _, n := range []int{1, 2, 4} {
		cl, err := open(n)
		if err != nil {
			return nil, err
		}

		ingestWall, err := run(len(docs), func(i int) error {
			_, err := cl.Ingest(owner(i), docs[i])
			return err
		})
		if err != nil {
			cl.Close()
			return nil, err
		}
		addRow("ingest", n, len(docs), ingestWall)

		// Warm up once so lazily built state is in place before timing.
		if _, err := cl.Evaluate(routed[0].q); err != nil {
			cl.Close()
			return nil, err
		}
		routedWall, err := run(queryTotal, func(i int) error {
			_, err := cl.Evaluate(routed[i%len(routed)].q)
			return err
		})
		if err != nil {
			cl.Close()
			return nil, err
		}
		addRow("routed-query", n, queryTotal, routedWall)

		fanoutWall, err := run(queryTotal, func(i int) error {
			q := *routed[i%len(routed)].q
			q.Owner = ""
			_, err := cl.Evaluate(&q)
			return err
		})
		if err != nil {
			cl.Close()
			return nil, err
		}
		addRow("fanout-query", n, queryTotal, fanoutWall)

		if err := cl.Close(); err != nil {
			return nil, err
		}
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d docs across %d owners; every routed query names one owner, so the router sends it to hash(owner) %% N without touching other shards", len(docs), owners),
		"routed speedup comes from data reduction (each shard holds 1/N of the corpus) plus shard-level concurrency; it holds even on one core",
		"fan-out queries evaluate on every shard and k-way merge, so their per-query work is constant in N — the row bounds the scatter-gather overhead",
		"in-memory filesystems and DisableCache isolate routing+evaluation; fsync cost is R1/R2 territory and cache hits are C2",
		fmt.Sprintf("GOMAXPROCS=%d on this machine", runtime.GOMAXPROCS(0)))
	return t, nil
}

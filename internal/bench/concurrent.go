package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/gridmeta/hybridcat/internal/baseline"
	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/workload"
)

// C1ConcurrentReaders measures read-path scaling under the catalog's
// reader/writer lock split: aggregate query throughput as 1, 2, 4, and
// 8 goroutines evaluate the Figure-4 pipeline against a loaded catalog,
// for the hybrid store and the CLOB-only baseline. A final section
// reports single-threaded latency with the parallel fan-out enabled vs
// forced sequential, which bounds the coordination overhead the fan-out
// adds when there is nothing to gain from it.
func C1ConcurrentReaders(o Options) (*Table, error) {
	t := &Table{
		ID:      "C1",
		Title:   "concurrent readers: query throughput vs goroutines",
		Claim:   "read evaluations share a read lock, so throughput scales with reader goroutines up to the core count",
		Columns: []string{"store", "readers", "queries", "wall", "qps", "speedup"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(300)
	g := workload.New(cfg)
	docs := g.Corpus()

	// The query mix cycles the workload's shapes so every stage of the
	// pipeline (point, range, nested containment, structural theme,
	// multi-criteria) contributes to the measured throughput.
	var queries []*catalog.Query
	for i := 0; i < 32; i++ {
		switch i % 5 {
		case 0:
			queries = append(queries, g.PointQuery(i, i, i))
		case 1:
			queries = append(queries, g.RangeQuery(i, i+1, 0.4))
		case 2:
			queries = append(queries, g.NestedQuery(i, i, 1+i%2))
		case 3:
			queries = append(queries, g.ThemeQuery(i))
		case 4:
			queries = append(queries, g.MultiQuery(i, 2))
		}
	}
	total := o.scale(400)

	sweep := func(st baseline.Store, readers int) (time.Duration, error) {
		// Warm up once so lazily built state is in place before timing.
		if _, err := st.Evaluate(queries[0]); err != nil {
			return 0, err
		}
		next := make(chan int, total)
		for i := 0; i < total; i++ {
			next <- i
		}
		close(next)
		errs := make([]error, readers)
		start := time.Now()
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := range next {
					if _, err := st.Evaluate(queries[i%len(queries)]); err != nil {
						errs[r] = err
						return
					}
				}
			}(r)
		}
		wg.Wait()
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return wall, nil
	}

	openHybrid := func(opts catalog.Options) (baseline.Store, error) {
		// C1 measures lock scaling of the evaluation pipeline itself; with
		// the read caches on, repeated queries would measure cache hits
		// instead (that comparison is experiment C2).
		opts.DisableCache = true
		c, err := catalog.Open(g.Schema, opts)
		if err != nil {
			return nil, err
		}
		if err := g.RegisterDefinitions(c); err != nil {
			return nil, err
		}
		for _, d := range docs {
			if _, err := c.Ingest("bench", d); err != nil {
				return nil, err
			}
		}
		return baseline.Adapter{C: c}, nil
	}

	hybrid, err := openHybrid(catalog.Options{})
	if err != nil {
		return nil, err
	}
	clob, _, err := loadStore(KindClob, g, docs, o)
	if err != nil {
		return nil, err
	}
	for _, store := range []struct {
		kind StoreKind
		st   baseline.Store
	}{{KindHybrid, hybrid}, {KindClob, clob}} {
		var base time.Duration
		for _, readers := range []int{1, 2, 4, 8} {
			wall, err := sweep(store.st, readers)
			if err != nil {
				return nil, err
			}
			if readers == 1 {
				base = wall
			}
			qps := float64(total) / wall.Seconds()
			t.AddRow(string(store.kind), readers, total, wall,
				fmt.Sprintf("%.0f", qps), ratio(int64(base), int64(wall)))
		}
	}

	// Single-thread overhead of the intra-query fan-out: the same query
	// stream on one goroutine, with the worker pool forced on vs forced
	// sequential. The fan-out must cost near zero when rows are few.
	seq, err := openHybrid(catalog.Options{QueryWorkers: 1})
	if err != nil {
		return nil, err
	}
	par, err := openHybrid(catalog.Options{QueryWorkers: 4, ParallelRowThreshold: -1})
	if err != nil {
		return nil, err
	}
	seqWall, err := sweep(seq, 1)
	if err != nil {
		return nil, err
	}
	parWall, err := sweep(par, 1)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("single-thread latency, forced-parallel vs sequential: %s vs %s (%s overhead)",
			fmtDuration(parWall), fmtDuration(seqWall), ratio(int64(parWall), int64(seqWall))),
		"expected shape: qps grows with readers up to the core count for both stores, since evaluation takes only the read lock",
		fmt.Sprintf("GOMAXPROCS=%d on this machine — with a single CPU no parallel speedup is observable", runtime.GOMAXPROCS(0)))
	return t, nil
}

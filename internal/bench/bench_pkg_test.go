package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "T",
		Title:   "demo",
		Claim:   "c",
		Columns: []string{"a", "bb"},
	}
	tab.AddRow("x", 5)
	tab.AddRow(1500*time.Microsecond, 0.5)
	out := tab.String()
	for _, want := range []string{"== T: demo ==", "claim: c", "a", "bb", "1.50ms", "0.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFmtDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:  "500ns",
		1500 * time.Nanosecond: "1.5µs",
		2 * time.Millisecond:   "2.00ms",
		3 * time.Second:        "3.00s",
	}
	for d, want := range cases {
		if got := fmtDuration(d); got != want {
			t.Errorf("fmtDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestRegistryAndUnknown(t *testing.T) {
	ids := IDs()
	if len(ids) != 25 {
		t.Errorf("experiments = %v", ids)
	}
	if _, ok := Lookup("F1"); !ok {
		t.Error("F1 missing")
	}
	if _, err := Run("nope", Options{Quick: true}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

// TestFigureExperiments runs the four figure reproductions and checks
// their assertions hold.
func TestFigureExperiments(t *testing.T) {
	for _, id := range []string{"F1", "F2", "F3", "F4"} {
		tab, err := Run(id, Options{Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		out := tab.String()
		switch id {
		case "F1":
			if !strings.Contains(out, "response equals original  true") {
				t.Errorf("F1 round trip failed:\n%s", out)
			}
		case "F2":
			if !strings.Contains(out, "detailed [dynamic attribute]") {
				t.Errorf("F2 missing dynamic attribute row:\n%s", out)
			}
		case "F3":
			for _, want := range []string{`grid.dx[`, "grid-stretching -> grid (depth 1)", `-> attribute "grid"`} {
				if !strings.Contains(out, want) {
					t.Errorf("F3 missing %q:\n%s", want, out)
				}
			}
		case "F4":
			if !strings.Contains(out, "agreement") || !strings.Contains(out, "true") {
				t.Errorf("F4 pipeline/path disagreement:\n%s", out)
			}
		}
	}
}

// TestQuickExperimentsRun smoke-runs every measured experiment at Quick
// scale and sanity-checks the table shape.
func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still ingest corpora; skipped in -short")
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "A1", "A2", "A3", "A4", "A5"} {
		tab, err := Run(id, Options{Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		if len(tab.Columns) < 2 {
			t.Errorf("%s: columns = %v", id, tab.Columns)
		}
		for _, r := range tab.Rows {
			if len(r) != len(tab.Columns) {
				t.Errorf("%s: ragged row %v", id, r)
			}
		}
		t.Logf("\n%s", tab)
	}
}

package bench

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/workload"
)

// IR1RankedSearch measures BM25 ranked retrieval — the rank plan
// operator — against the structural keyword baseline on the same
// corpus. Three query shapes from the workload's search mode:
//
//   - structural: the ThemeQuery keyword-equality stream, the catalog's
//     pre-existing way to ask for content (exact themekey match through
//     the Figure-4 set pipeline);
//   - ranked: Zipf-skewed free-text terms scored BM25 top-k over the
//     text index, superuser scope;
//   - ranked+structural: the same terms gated by a place-keyword
//     criterion — content-and-structure composition, where the
//     structural plan admits candidates and the rank operator orders
//     them.
//
// Cold cells run with the read caches disabled, so every query pays
// resolve + probe + set ops (structural) or the allow-set plus scoring
// walk (ranked); the one-time text index build is timed separately and
// reported in the notes, not folded into per-query latency. Warm cells
// run cache-enabled after a warmup pass over the stream — and replay
// the stream through the search mode's JSON-lines query log
// (WriteQueryLog -> ReadQueryLog), so the measured warm queries are the
// replayed bytes, proving the log round-trips the wire format.
func IR1RankedSearch(o Options) (*Table, error) {
	t := &Table{
		ID:      "IR1",
		Title:   "ranked retrieval: BM25 top-k vs structural keyword baseline",
		Claim:   "BM25 top-k over the epoch-stamped text index answers free-text metadata search at latency comparable to a structural keyword probe, and composing rank with a structural criterion costs roughly the sum of its parts",
		Columns: []string{"shape", "cache", "queries", "p50", "p95", "qps"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(800)
	g := workload.New(cfg)
	docs := g.Corpus()

	reps, perRep := o.runs(), 16
	need := perRep * (reps + 1)

	load := func(opts catalog.Options, reg *obs.Registry) (*catalog.Catalog, error) {
		opts.Metrics = reg
		c, err := catalog.Open(g.Schema, opts)
		if err != nil {
			return nil, err
		}
		if err := g.RegisterDefinitions(c); err != nil {
			return nil, err
		}
		for _, d := range docs {
			if _, err := c.Ingest("bench", d); err != nil {
				return nil, err
			}
		}
		return c, nil
	}

	// The three query streams. Ranked streams come out of the search
	// mode's generator; the structural baseline reuses the keyword
	// queries every other experiment issues.
	structural := make([]*catalog.Query, need)
	ranked := make([]*catalog.Query, need)
	composed := make([]*catalog.Query, need)
	for i := range structural {
		structural[i] = g.ThemeQuery(i)
		ranked[i] = g.RankedQuery(i)
		composed[i] = g.RankedStructuralQuery(i)
	}

	// Round-trip the ranked stream through the JSON-lines query log; the
	// warm cells measure the replayed queries.
	var logBuf bytes.Buffer
	if err := workload.WriteQueryLog(&logBuf, ranked); err != nil {
		return nil, err
	}
	rankedReplay, err := workload.ReadQueryLog(&logBuf)
	if err != nil {
		return nil, err
	}
	if len(rankedReplay) != len(ranked) {
		return nil, fmt.Errorf("bench IR1: query log replay lost queries: %d != %d", len(rankedReplay), len(ranked))
	}

	evalOne := func(c *catalog.Catalog, q *catalog.Query) (int, error) {
		if q.Rank != nil {
			scored, err := c.EvaluateRanked(q)
			return len(scored), err
		}
		ids, err := c.Evaluate(q)
		return len(ids), err
	}

	timeQueries := func(c *catalog.Catalog, qs []*catalog.Query) ([]time.Duration, int, error) {
		lats := make([]time.Duration, 0, len(qs))
		hits := 0
		for _, q := range qs {
			start := time.Now()
			n, err := evalOne(c, q)
			if err != nil {
				return nil, 0, err
			}
			lats = append(lats, time.Since(start))
			hits += n
		}
		return lats, hits, nil
	}

	stats := func(lats []time.Duration, wall time.Duration) (p50, p95 time.Duration, qps float64) {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		at := func(p float64) time.Duration {
			i := int(p * float64(len(lats)))
			if i >= len(lats) {
				i = len(lats) - 1
			}
			return lats[i]
		}
		return at(0.50), at(0.95), float64(len(lats)) / wall.Seconds()
	}

	shapes := []struct {
		label      string
		cold, warm []*catalog.Query
	}{
		{"structural", structural, structural},
		{"ranked", ranked, rankedReplay},
		{"ranked+structural", composed, composed},
	}

	// Cold: caches off. Build the text index once up front (timed into
	// the notes) so cold ranked latency is scoring, not amortized
	// construction — mirroring how the cold structural cell still uses
	// the already-built B-tree indexes.
	coldReg := obs.NewRegistry()
	cold, err := load(catalog.Options{DisableCache: true}, coldReg)
	if err != nil {
		return nil, err
	}
	buildStart := time.Now()
	if _, err := cold.EvaluateRanked(ranked[0]); err != nil {
		return nil, err
	}
	buildTime := time.Since(buildStart)

	warmReg := obs.NewRegistry()
	warm, err := load(catalog.Options{}, warmReg)
	if err != nil {
		return nil, err
	}

	p50s := map[string]time.Duration{}
	for _, sh := range shapes {
		var lats []time.Duration
		var wall time.Duration
		totalHits := 0
		for rep := 0; rep < reps; rep++ {
			qs := sh.cold[rep*perRep : (rep+1)*perRep]
			start := time.Now()
			l, hits, err := timeQueries(cold, qs)
			if err != nil {
				return nil, err
			}
			wall += time.Since(start)
			lats = append(lats, l...)
			totalHits += hits
		}
		if totalHits == 0 {
			return nil, fmt.Errorf("bench IR1: %s stream matched nothing — workload drifted", sh.label)
		}
		p50, p95, qps := stats(lats, wall)
		t.AddRow(sh.label, "cold", len(lats), p50, p95, fmt.Sprintf("%.0f", qps))
		p50s[sh.label+"/cold"] = p50

		// Warmup pass over the block the warm cell will measure, then
		// time it hot (evaluate/probe/postings caches and the text index
		// all warm).
		wqs := sh.warm[reps*perRep : need]
		if _, _, err := timeQueries(warm, wqs); err != nil {
			return nil, err
		}
		start := time.Now()
		l, _, err := timeQueries(warm, wqs)
		if err != nil {
			return nil, err
		}
		wWall := time.Since(start)
		p50, p95, qps = stats(l, wWall)
		t.AddRow(sh.label, "warm", len(l), p50, p95, fmt.Sprintf("%.0f", qps))
		p50s[sh.label+"/warm"] = p50
	}

	coldSnap, warmSnap := coldReg.Snapshot(), warmReg.Snapshot()
	builds := coldSnap["textindex_builds_total"] + warmSnap["textindex_builds_total"]
	t.Notes = append(t.Notes, fmt.Sprintf(
		"text index: one-time build %s over %d docs (%.0f indexed docs, %.0f terms; textindex_builds_total=%.0f across both catalogs — epoch-stamped, rebuilt only after mutations)",
		fmtDuration(buildTime), len(docs),
		coldSnap["textindex_docs"], coldSnap["textindex_terms"], builds))
	if sp, rp := p50s["structural/cold"], p50s["ranked/cold"]; sp > 0 && rp > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"cold p50: ranked %s vs structural keyword %s = %.1fx (ranked walks per-term posting lists and a top-k heap; structural pays resolve + B-tree probe + set ops)",
			fmtDuration(rp), fmtDuration(sp), float64(rp)/float64(sp)))
	}
	if rp, cp := p50s["ranked/warm"], p50s["ranked+structural/warm"]; rp > 0 && cp > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"warm p50: ranked+structural %s vs ranked alone %s — composition adds the structural plan's cost as the admission filter",
			fmtDuration(cp), fmtDuration(rp)))
	}
	hist := g.TermHistogram(need)
	top := hist
	if len(top) > 5 {
		top = top[:5]
	}
	var head string
	for i, tc := range top {
		if i > 0 {
			head += ", "
		}
		head += fmt.Sprintf("%s=%d", tc.Term, tc.Count)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Zipf-skewed term stream: %d distinct terms over %d ranked queries, head [%s]; warm ranked cells replay the stream from the JSON-lines query log",
		len(hist), need, head))
	return t, nil
}

package bench

import (
	"fmt"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
	"github.com/gridmeta/hybridcat/internal/xpath"
)

// fig3Catalog opens a catalog with the Figure 3 dynamic definitions and
// the Figure 3 document ingested.
func fig3Catalog() (*catalog.Catalog, int64, error) {
	c, err := catalog.Open(xmlschema.MustLEAD(), catalog.Options{})
	if err != nil {
		return nil, 0, err
	}
	grid, err := c.RegisterAttr("grid", "ARPS", 0, "")
	if err != nil {
		return nil, 0, err
	}
	for _, e := range []string{"dx", "dz"} {
		if _, err := c.RegisterElem(e, "ARPS", grid.ID, core.DTFloat, ""); err != nil {
			return nil, 0, err
		}
	}
	gs, err := c.RegisterAttr("grid-stretching", "ARPS", grid.ID, "")
	if err != nil {
		return nil, 0, err
	}
	for _, e := range []string{"dzmin", "reference-height"} {
		if _, err := c.RegisterElem(e, "ARPS", gs.ID, core.DTFloat, ""); err != nil {
			return nil, 0, err
		}
	}
	id, err := c.IngestXML("scientist", xmlschema.Figure3Document)
	if err != nil {
		return nil, 0, err
	}
	return c, id, nil
}

// F1RoundTrip reproduces Figure 1: the full hybrid pipeline on the
// Figure 3 document — shred, store, query on attributes, rebuild the
// ordered XML response — reporting each stage's row counts and the
// round-trip fidelity.
func F1RoundTrip(o Options) (*Table, error) {
	_ = o
	t := &Table{
		ID:      "F1",
		Title:   "Figure 1 pipeline round trip on the Figure 3 document",
		Claim:   "Figure 1: shredded attributes answer the query; CLOBs plus the global ordering rebuild the document",
		Columns: []string{"stage", "result"},
	}
	c, id, err := fig3Catalog()
	if err != nil {
		return nil, err
	}
	for _, tbl := range []string{catalog.TClobs, catalog.TAttrData, catalog.TElemData, catalog.TSubAttrs} {
		t.AddRow("rows in "+tbl, c.DB.MustTable(tbl).Len())
	}
	q := &catalog.Query{}
	g := q.Attr("grid", "ARPS")
	g.AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	resp, err := c.Search(q)
	if err != nil {
		return nil, err
	}
	t.AddRow("objects matching dx=1000", len(resp))
	want, _ := xmldoc.ParseString(xmlschema.Figure3Document)
	got, err := xmldoc.ParseString(resp[0].XML)
	if err != nil {
		return nil, err
	}
	t.AddRow("response well-formed", err == nil)
	t.AddRow("response equals original", xmldoc.Equal(want, got))
	t.AddRow("object id", id)
	return t, nil
}

// F2SchemaOrdering reproduces Figure 2: the LEAD partial schema
// partitioned into metadata attributes with the circled global node
// ordering.
func F2SchemaOrdering(o Options) (*Table, error) {
	_ = o
	t := &Table{
		ID:      "F2",
		Title:   "Figure 2: LEAD schema partitioning and global node ordering",
		Claim:   "Figure 2: one pre-order number per node at or above a metadata attribute; last-child order enables set-based close tags",
		Columns: []string{"ordering"},
	}
	s := xmlschema.MustLEAD()
	for _, row := range s.OrderingTable() {
		t.AddRow(row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d ordered nodes, %d metadata attributes", len(s.Ordered), len(s.Attributes)))
	return t, nil
}

// F3Shred reproduces Figure 3: the worked shredding of the example
// document into CLOBs, attribute/element rows, and the sub-attribute
// inverted list.
func F3Shred(o Options) (*Table, error) {
	_ = o
	t := &Table{
		ID:      "F3",
		Title:   "Figure 3: shredding the example document",
		Claim:   "§3: theme attributes shred by tag; the detailed element resolves to grid/ARPS by name+source",
		Columns: []string{"kind", "detail"},
	}
	c, _, err := fig3Catalog()
	if err != nil {
		return nil, err
	}
	clobT := c.DB.MustTable(catalog.TClobs)
	clobT.Scan(func(_ int64, r relstore.Row) bool {
		node := c.Schema.NodeByOrder(int(r[1].I))
		attr := "unshredded"
		if !r[3].IsNull() {
			attr = c.Reg.AttrByID(r[3].I).Name
		}
		t.AddRow("clob", fmt.Sprintf("node %s (order %d) seq %d -> attribute %q, %d bytes",
			node.Tag, r[1].I, r[2].I, attr, len(r[5].S)))
		return true
	})
	elemT := c.DB.MustTable(catalog.TElemData)
	elemT.Scan(func(_ int64, r relstore.Row) bool {
		ed := c.Reg.ElemByID(r[3].I)
		owner := c.Reg.AttrByID(r[1].I)
		t.AddRow("element", fmt.Sprintf("%s.%s[%d] = %q", owner.Name, ed.Name, r[4].I, r[5].S))
		return true
	})
	subT := c.DB.MustTable(catalog.TSubAttrs)
	subT.Scan(func(_ int64, r relstore.Row) bool {
		t.AddRow("inverted-list", fmt.Sprintf("%s -> %s (depth %d)",
			c.Reg.AttrByID(r[1].I).Name, c.Reg.AttrByID(r[3].I).Name, r[5].I))
		return true
	})
	return t, nil
}

// F4WorkedQuery reproduces Figure 4 on the paper's §4 worked query, and
// checks the set-based pipeline agrees with the XQuery-style path
// evaluation of the same criteria.
func F4WorkedQuery(o Options) (*Table, error) {
	_ = o
	t := &Table{
		ID:      "F4",
		Title:   "Figure 4: the §4 worked query through the set-based pipeline",
		Claim:   "§4: unordered attribute criteria replace the XQuery FLWOR path expression",
		Columns: []string{"evaluation", "result"},
	}
	c, id, err := fig3Catalog()
	if err != nil {
		return nil, err
	}
	// Distractor that must not match.
	doc, _ := xmldoc.ParseString(xmlschema.Figure3Document)
	for _, a := range doc.FindAll("attr") {
		if a.ChildText("attrlabl") == "dx" {
			a.Child("attrv").Text = "2000"
		}
	}
	if _, err := c.Ingest("scientist", doc); err != nil {
		return nil, err
	}

	q := &catalog.Query{}
	g := q.Attr("grid", "ARPS")
	g.AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	st := &catalog.AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
	st.AddElem("dzmin", "ARPS", relstore.OpEq, relstore.Int(100))
	g.AddSub(st)
	ids, err := c.Evaluate(q)
	if err != nil {
		return nil, err
	}
	t.AddRow("hybrid pipeline object IDs", fmt.Sprint(ids))

	// The same criteria as the paper's XQuery, evaluated path-wise over
	// the raw documents.
	dx := xpath.MustCompile("//detailed/attr[attrlabl='dx'][attrdefs='ARPS'][attrv=1000]")
	dz := xpath.MustCompile("//detailed/attr[attrlabl='grid-stretching'][attrdefs='ARPS']/attr[attrlabl='dzmin'][attrv=100]")
	var pathIDs []int64
	for oid := int64(1); oid <= 2; oid++ {
		d, err := c.FetchDocument(oid)
		if err != nil {
			return nil, err
		}
		if dx.Matches(d) && dz.Matches(d) {
			pathIDs = append(pathIDs, oid)
		}
	}
	t.AddRow("XQuery-style path evaluation", fmt.Sprint(pathIDs))
	t.AddRow("agreement", fmt.Sprint(ids) == fmt.Sprint(pathIDs))
	t.AddRow("expected match", fmt.Sprintf("[%d]", id))
	return t, nil
}

package bench

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/faultio"
	"github.com/gridmeta/hybridcat/internal/replica"
	"github.com/gridmeta/hybridcat/internal/retry"
	"github.com/gridmeta/hybridcat/internal/service"
	"github.com/gridmeta/hybridcat/internal/workload"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
)

// R2Replication quantifies the two halves of the replication design:
//
//   - group commit: the same corpus ingested by 1/2/4/8 concurrent
//     writers with one fsync per commit vs batched group commit. With a
//     single writer the two are equivalent (every batch holds one
//     record); with concurrent writers group commit amortizes the fsync
//     across the batch, so throughput should scale with writers instead
//     of being serialized behind the sync queue.
//   - replica lag: a live tailer follows the primary over HTTP while
//     writers ingest at increasing rates; the lag samples show how far
//     a replica trails (in log records) at each ingest rate and how
//     fast it converges once the ingest stops.
//
// Files live in a temp directory so fsync hits a real file system.
func R2Replication(o Options) (*Table, error) {
	t := &Table{
		ID:      "R2",
		Title:   "group commit and WAL-shipped replication: writer scaling and replica lag",
		Claim:   "group commit amortizes fsync across concurrent writers; replica lag stays bounded and converges after ingest stops",
		Columns: []string{"phase", "config", "writers", "docs", "wall", "per-doc", "detail"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(240)
	g := workload.New(cfg)
	docs := g.Corpus()

	dir, err := os.MkdirTemp("", "hybridcat-r2-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// syncDelay models a storage device with a real flush cost (spinning
	// disk / network volume); the build machine's temp filesystem syncs
	// in microseconds, which would hide exactly the cost group commit
	// exists to amortize.
	const syncDelay = 2 * time.Millisecond

	open := func(name string, fs faultio.FS, group bool) (*catalog.Catalog, error) {
		walPath := filepath.Join(dir, name, "cat.wal")
		if err := os.MkdirAll(filepath.Dir(walPath), 0o755); err != nil {
			return nil, err
		}
		return catalog.OpenDurable(g.Schema, catalog.Options{}, catalog.DurabilityOptions{
			FS: fs, WALPath: walPath, CheckpointEvery: 0,
			GroupCommit: group, GroupCommitWait: 200 * time.Microsecond,
		})
	}

	// ingestConcurrent splits the corpus across n writers and ingests it
	// all, returning the wall time.
	ingestConcurrent := func(c *catalog.Catalog, n int) (time.Duration, error) {
		if err := g.RegisterDefinitions(c); err != nil {
			return 0, err
		}
		var wg sync.WaitGroup
		errs := make(chan error, n)
		start := time.Now()
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(chunk []*xmldoc.Node) {
				defer wg.Done()
				for _, d := range chunk {
					if _, err := c.Ingest("bench", d); err != nil {
						errs <- err
						return
					}
				}
			}(docs[w*len(docs)/n : (w+1)*len(docs)/n])
		}
		wg.Wait()
		wall := time.Since(start)
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		return wall, nil
	}

	for _, writers := range []int{1, 2, 4, 8} {
		for _, mode := range []struct {
			config string
			group  bool
		}{{"fsync-per-commit", false}, {"group-commit", true}} {
			c, err := open(fmt.Sprintf("ingest-%s-%d", mode.config, writers),
				faultio.NewSlowFS(faultio.OS{}, syncDelay), mode.group)
			if err != nil {
				return nil, err
			}
			wall, err := ingestConcurrent(c, writers)
			if err != nil {
				return nil, err
			}
			st := c.DurabilityStats()
			detail := fmt.Sprintf("%.0f docs/s", float64(len(docs))/wall.Seconds())
			if mode.group && st.Group.Batches > 0 {
				detail += fmt.Sprintf(", %.2f recs/batch",
					float64(st.Group.Records)/float64(st.Group.Batches))
			}
			t.AddRow("ingest", mode.config, writers, len(docs), wall,
				wall/time.Duration(len(docs)), detail)
			if err := c.Close(); err != nil {
				return nil, err
			}
		}
	}

	// Replica lag vs ingest rate: a primary behind the real service
	// handler, a live tailer, and a throttled writer. Lag is sampled
	// while the ingest runs; convergence is timed after it stops.
	lagDocs := o.scale(120)
	for _, rate := range []int{100, 400, 0} { // docs/sec; 0 = unthrottled
		c, err := open(fmt.Sprintf("lag-%d", rate), faultio.OS{}, true)
		if err != nil {
			return nil, err
		}
		if err := g.RegisterDefinitions(c); err != nil {
			return nil, err
		}
		ts := httptest.NewServer(service.New(c).Handler())
		rep, err := replica.New(replica.Options{
			Primary:  ts.URL,
			Schema:   g.Schema,
			Retry:    retry.DefaultPolicy,
			PollWait: 20 * time.Millisecond,
		})
		if err != nil {
			ts.Close()
			return nil, err
		}
		ctx, cancel := context.WithCancel(context.Background())
		tailDone := make(chan error, 1)
		go func() { tailDone <- rep.Run(ctx) }()

		var maxLag atomic.Uint64
		sampleStop := make(chan struct{})
		var sampleWG sync.WaitGroup
		sampleWG.Add(1)
		go func() {
			defer sampleWG.Done()
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-sampleStop:
					return
				case <-tick.C:
					if p, a := c.PublishedSeq(), rep.AppliedSeq(); p > a && p-a > maxLag.Load() {
						maxLag.Store(p - a)
					}
				}
			}
		}()

		var gap time.Duration
		if rate > 0 {
			gap = time.Second / time.Duration(rate)
		}
		start := time.Now()
		for i := 0; i < lagDocs; i++ {
			next := start.Add(time.Duration(i) * gap)
			if d := time.Until(next); gap > 0 && d > 0 {
				time.Sleep(d)
			}
			if _, err := c.Ingest("bench", docs[i%len(docs)]); err != nil {
				cancel()
				ts.Close()
				return nil, err
			}
		}
		ingestWall := time.Since(start)

		// Convergence: how long until the replica's cursor reaches the
		// primary's watermark after the last commit.
		target := c.PublishedSeq()
		catchStart := time.Now()
		for rep.AppliedSeq() < target {
			if time.Since(catchStart) > 30*time.Second {
				cancel()
				ts.Close()
				return nil, fmt.Errorf("bench R2: replica stuck at %d, want %d", rep.AppliedSeq(), target)
			}
			time.Sleep(time.Millisecond)
		}
		catchup := time.Since(catchStart)
		close(sampleStop)
		sampleWG.Wait()
		cancel()
		if err := <-tailDone; !errors.Is(err, context.Canceled) {
			ts.Close()
			return nil, fmt.Errorf("bench R2: tailer: %w", err)
		}
		ts.Close()

		config := fmt.Sprintf("%d docs/s", rate)
		if rate == 0 {
			config = "unthrottled"
		}
		t.AddRow("replica-lag", config, 1, lagDocs, ingestWall,
			ingestWall/time.Duration(lagDocs),
			fmt.Sprintf("max lag %d recs, catch-up %s", maxLag.Load(), fmtDuration(catchup)))
		if err := c.Close(); err != nil {
			return nil, err
		}
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("ingest runs on a latency-modeled filesystem (%s per fsync) so the sync cost is realistic; replica-lag runs on the plain OS filesystem", syncDelay),
		"both ingest configs fsync before acknowledging; group commit batches concurrent commits into one fsync (recs/batch shows the amortization)",
		"with one writer group commit degenerates to fsync-per-commit (every batch holds one record), so those rows should match",
		"replica lag is sampled every 2ms as primary published seq minus replica applied seq; catch-up is the drain time after the last commit",
		"expected shape: fsync-per-commit throughput is flat in writers (serialized syncs); group commit scales with writers; lag grows with ingest rate but converges quickly once ingest stops")
	return t, nil
}

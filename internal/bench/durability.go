package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/workload"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
)

// R1Durability quantifies what the write-ahead log costs and what it
// buys:
//
//   - ingest: the same corpus ingested with no durability, with the WAL
//     fsyncing every commit, and with the WAL appending without fsync —
//     separating the record-encoding overhead from the fsync cost,
//   - recover: OpenDurable wall time against logs of increasing length
//     (replay cost grows with the log) and against a checkpointed store
//     (snapshot load plus an empty log), which is the bound
//     -checkpoint-every exists to enforce.
//
// Files live in a throwaway temp directory so fsync hits a real file
// system; each configuration gets its own subdirectory.
func R1Durability(o Options) (*Table, error) {
	t := &Table{
		ID:      "R1",
		Title:   "WAL durability: ingest overhead and recovery time",
		Claim:   "per-commit fsync dominates WAL cost; recovery is linear in log length and checkpoints bound it by snapshot size",
		Columns: []string{"phase", "config", "docs", "wall", "per-doc", "log bytes"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(200)
	g := workload.New(cfg)
	docs := g.Corpus()

	dir, err := os.MkdirTemp("", "hybridcat-r1-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	ingestAll := func(c *catalog.Catalog, docs []*xmldoc.Node) (time.Duration, error) {
		if err := g.RegisterDefinitions(c); err != nil {
			return 0, err
		}
		start := time.Now()
		for _, d := range docs {
			if _, err := c.Ingest("bench", d); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	openAt := func(name string, nosync bool, every int) (*catalog.Catalog, string, error) {
		walPath := filepath.Join(dir, name, "cat.wal")
		if err := os.MkdirAll(filepath.Dir(walPath), 0o755); err != nil {
			return nil, "", err
		}
		c, err := catalog.OpenDurable(g.Schema, catalog.Options{}, catalog.DurabilityOptions{
			WALPath: walPath, NoSync: nosync, CheckpointEvery: every,
		})
		return c, walPath, err
	}
	logSize := func(path string) int64 {
		fi, err := os.Stat(path)
		if err != nil {
			return 0
		}
		return fi.Size()
	}

	// Ingest overhead. The no-WAL catalog anchors the comparison.
	plain, err := catalog.Open(g.Schema, catalog.Options{})
	if err != nil {
		return nil, err
	}
	base, err := ingestAll(plain, docs)
	if err != nil {
		return nil, err
	}
	t.AddRow("ingest", "none", len(docs), base, base/time.Duration(len(docs)), "-")

	for _, mode := range []struct {
		config string
		nosync bool
	}{{"wal", false}, {"wal-nosync", true}} {
		c, walPath, err := openAt("ingest-"+mode.config, mode.nosync, 0)
		if err != nil {
			return nil, err
		}
		wall, err := ingestAll(c, docs)
		if err != nil {
			return nil, err
		}
		t.AddRow("ingest", mode.config, len(docs), wall, wall/time.Duration(len(docs)),
			fmt.Sprint(logSize(walPath)))
	}

	// Recovery time vs log length: build un-checkpointed logs of
	// increasing length, then time OpenDurable (which replays them). The
	// builder catalog is dropped without Close so the log survives.
	reopen := func(walPath string) (time.Duration, error) {
		return median(o.runs(), func() error {
			c, err := catalog.OpenDurable(g.Schema, catalog.Options{}, catalog.DurabilityOptions{WALPath: walPath})
			if err != nil {
				return err
			}
			if c.ObjectCount() == 0 {
				return fmt.Errorf("bench R1: recovery found no objects")
			}
			return nil
		})
	}
	for _, frac := range []int{4, 2, 1} {
		n := len(docs) / frac
		c, walPath, err := openAt(fmt.Sprintf("recover-%d", n), false, 0)
		if err != nil {
			return nil, err
		}
		if _, err := ingestAll(c, docs[:n]); err != nil {
			return nil, err
		}
		wall, err := reopen(walPath)
		if err != nil {
			return nil, err
		}
		t.AddRow("recover", "log-only", n, wall, wall/time.Duration(n), fmt.Sprint(logSize(walPath)))
	}

	// Checkpointed recovery: same corpus, but a checkpoint truncates the
	// log, so reopening loads the snapshot and replays nothing.
	c, walPath, err := openAt("recover-snap", false, 0)
	if err != nil {
		return nil, err
	}
	if _, err := ingestAll(c, docs); err != nil {
		return nil, err
	}
	if err := c.Checkpoint(); err != nil {
		return nil, err
	}
	wall, err := reopen(walPath)
	if err != nil {
		return nil, err
	}
	t.AddRow("recover", "snapshot", len(docs), wall, wall/time.Duration(len(docs)),
		fmt.Sprint(logSize(walPath)))

	t.Notes = append(t.Notes,
		"wal fsyncs every commit before the ingest returns; wal-nosync appends the same records without fsync, isolating the sync cost",
		"log-only recovery replays every record over an empty store; snapshot recovery loads the checkpoint and replays an empty log",
		"expected shape: wal-nosync is close to none; wal pays one fsync per ingest; log-only recovery grows linearly with log length while snapshot recovery stays flat")
	return t, nil
}

package bench

import (
	"fmt"
	"time"

	"github.com/gridmeta/hybridcat/internal/baseline"
	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/workload"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
)

// E1Throughput reproduces the paper's §1 claim that a native XML store
// (Xindice) is "far inferior ... in terms of throughput" to a relational
// backend: ingest time and point-query throughput for the hybrid catalog
// vs. the native XML store, across corpus sizes.
func E1Throughput(o Options) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "relational catalog vs native XML store throughput",
		Claim:   "§1: Xindice-style native XML storage is far inferior to an RDBMS in throughput",
		Columns: []string{"docs", "store", "ingest", "point-qry", "qry/s"},
	}
	for _, docs := range []int{o.scale(100), o.scale(500), o.scale(1500)} {
		cfg := workload.Default()
		cfg.Docs = docs
		g := workload.New(cfg)
		corpus := g.Corpus()
		for _, kind := range []StoreKind{KindHybrid, KindNativeXML} {
			st, ingest, err := loadStore(kind, g, corpus, o)
			if err != nil {
				return nil, err
			}
			qi := 0
			lat, err := median(o.runs(), func() error {
				qi++
				_, err := st.Evaluate(g.PointQuery(qi, qi, qi))
				return err
			})
			if err != nil {
				return nil, err
			}
			qps := 0.0
			if lat > 0 {
				qps = float64(time.Second) / float64(lat)
			}
			t.AddRow(docs, string(kind), ingest, lat, fmt.Sprintf("%.0f", qps))
		}
	}
	t.Notes = append(t.Notes, "expected shape: hybrid query latency ~flat in corpus size (index probes); nativexml grows ~linearly (per-document tree walks)")
	return t, nil
}

// E2QueryScale reproduces the §2/§6 claim that the hybrid layout beats
// inlining (and the rest) for metadata-attribute queries as the corpus
// grows, because dynamic attributes fragment inlined tables into
// join-heavy chains.
func E2QueryScale(o Options) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "attribute-query latency vs corpus size, all stores",
		Claim:   "§2/§6: hybrid shredding answers attribute queries faster than inlining/edge/CLOB layouts",
		Columns: []string{"docs", "store", "point-qry", "range-qry", "nested-qry"},
	}
	for _, docs := range []int{o.scale(100), o.scale(500), o.scale(1500)} {
		cfg := workload.Default()
		cfg.Docs = docs
		g := workload.New(cfg)
		corpus := g.Corpus()
		for _, kind := range AllKinds {
			st, _, err := loadStore(kind, g, corpus, o)
			if err != nil {
				return nil, err
			}
			qi := 0
			point, err := median(o.runs(), func() error {
				qi++
				_, err := st.Evaluate(g.PointQuery(qi, qi, qi))
				return err
			})
			if err != nil {
				return nil, err
			}
			rng, err := median(o.runs(), func() error {
				qi++
				_, err := st.Evaluate(g.RangeQuery(qi, qi, 0.3))
				return err
			})
			if err != nil {
				return nil, err
			}
			nested, err := median(o.runs(), func() error {
				qi++
				_, err := st.Evaluate(g.NestedQuery(qi, qi, 1))
				return err
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(docs, string(kind), point, rng, nested)
		}
	}
	t.Notes = append(t.Notes, "expected shape: hybrid lowest and ~flat; inlining pays per-level attr self-joins on nested queries; clob pays full parse scans")
	return t, nil
}

// E3NestingDepth reproduces the §6 claim that the sub-attribute inverted
// list avoids the per-level self-joins that hinder the edge-table
// approach: query latency as criteria nesting deepens.
func E3NestingDepth(o Options) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "nested sub-attribute query latency vs nesting depth",
		Claim:   "§6: inverted lists avoid the self-joins that hinder the edge-table approach",
		Columns: []string{"depth", "hybrid", "edge", "inlining"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(400)
	cfg.NestDepth = 6
	cfg.ParamsPerAttr = 14
	g := workload.New(cfg)
	corpus := g.Corpus()
	stores := map[StoreKind]baseline.Store{}
	for _, kind := range []StoreKind{KindHybrid, KindEdge, KindInlining} {
		st, _, err := loadStore(kind, g, corpus, o)
		if err != nil {
			return nil, err
		}
		stores[kind] = st
	}
	for depth := 1; depth <= 6; depth++ {
		row := []any{depth}
		for _, kind := range []StoreKind{KindHybrid, KindEdge, KindInlining} {
			qi := 0
			lat, err := median(o.runs(), func() error {
				qi++
				_, err := stores[kind].Evaluate(g.NestedQuery(qi, qi, depth))
				return err
			})
			if err != nil {
				return nil, err
			}
			row = append(row, lat)
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "expected shape: hybrid ~flat in depth (one inverted-list join); edge/inlining grow with depth (one self-join per level)")
	return t, nil
}

// E4ResponseBuild reproduces the §2/§5 claims: per-attribute CLOBs plus
// the schema-level ordering rebuild tagged responses faster than
// re-assembling shredded rows.
func E4ResponseBuild(o Options) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "response (document) construction time vs result-set size",
		Claim:   "§2/§5: CLOB-based set-operation tagging beats row re-assembly for query responses",
		Columns: []string{"results", "store", "build-time", "per-doc"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(600)
	g := workload.New(cfg)
	corpus := g.Corpus()
	stores := map[StoreKind]baseline.Store{}
	for _, kind := range []StoreKind{KindHybrid, KindInlining, KindEdge} {
		st, _, err := loadStore(kind, g, corpus, o)
		if err != nil {
			return nil, err
		}
		stores[kind] = st
	}
	for _, n := range []int{1, 10, 50, o.scale(250)} {
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = int64(i%cfg.Docs) + 1
		}
		for _, kind := range []StoreKind{KindHybrid, KindInlining, KindEdge} {
			lat, err := median(o.runs(), func() error {
				resp, err := stores[kind].Fetch(ids)
				if err == nil && len(resp) != n {
					return fmt.Errorf("%s returned %d of %d docs", kind, len(resp), n)
				}
				return err
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(n, string(kind), lat, time.Duration(int64(lat)/int64(n)))
		}
	}
	t.Notes = append(t.Notes, "expected shape: all ~linear in result size; hybrid per-doc cost lowest (concatenate pre-serialized CLOBs + set-based tags)")
	return t, nil
}

// E5Storage reproduces the §6 space claim: the hybrid stores at most one
// CLOB copy of each attribute subtree (single attribute per root-to-leaf
// path), unlike per-level subtree CLOBs [15]; the edge table pays
// per-edge row overhead.
func E5Storage(o Options) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "storage bytes per document, by approach",
		Claim:   "§6: one CLOB per path bounds hybrid overhead below subtree-CLOBs-at-every-level [15]",
		Columns: []string{"store", "total", "bytes/doc", "vs raw"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(300)
	g := workload.New(cfg)
	corpus := g.Corpus()
	var rawBytes int64
	for _, d := range corpus {
		rawBytes += int64(len(d.String()))
	}
	for _, kind := range AllKinds {
		st, _, err := loadStore(kind, g, corpus, o)
		if err != nil {
			return nil, err
		}
		total := st.StorageBytes()
		t.AddRow(string(kind), total, total/int64(cfg.Docs), ratio(total, rawBytes))
		if kind == KindHybrid {
			// The paper's space claim is about CLOB payload: the hybrid
			// stores one CLOB copy of each attribute subtree.
			c := st.(baseline.Adapter).C
			var clobBytes int64
			c.DB.MustTable(catalog.TClobs).Scan(func(_ int64, r relstore.Row) bool {
				clobBytes += int64(len(r[5].S))
				return true
			})
			t.AddRow("hybrid CLOB payload only", clobBytes, clobBytes/int64(cfg.Docs), ratio(clobBytes, rawBytes))
		}
	}
	// Balmin/Papakonstantinou-style subtree CLOBs at every interior node
	// [15]: computed analytically over the corpus.
	var everyLevel int64
	for _, d := range corpus {
		d.Walk(func(n *xmldoc.Node) bool {
			if !n.IsLeaf() && n.Parent != nil {
				everyLevel += int64(len(n.String()))
			}
			return true
		})
	}
	t.AddRow("clobs-at-every-level [15]", everyLevel, everyLevel/int64(cfg.Docs), ratio(everyLevel, rawBytes))
	t.AddRow("raw documents", rawBytes, rawBytes/int64(cfg.Docs), "1.00x")
	t.Notes = append(t.Notes,
		"expected shape: hybrid CLOB payload <= raw bytes (one CLOB per attribute subtree, single attribute per path); every-level CLOBs [15] exceed raw and grow with depth; edge pays per-row overhead",
		"totals include in-memory row overhead (value headers), which inflates all relational layouts equally")
	return t, nil
}

// E6DynamicAttrs reproduces the §3 claims around dynamic attributes:
// ingest cost is flat in recursion depth for a fixed node count (the
// recursion "disappears"), and insert-time validation costs a small
// constant factor.
func E6DynamicAttrs(o Options) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "ingest latency vs dynamic nesting depth; validation cost",
		Claim:   "§3: name/source resolution makes recursion disappear; validation is cheap at insert",
		Columns: []string{"depth", "params", "hybrid-ingest", "edge-ingest", "hybrid-novalidate"},
	}
	for _, depth := range []int{0, 2, 4, 6} {
		cfg := workload.Default()
		cfg.Docs = o.scale(150)
		cfg.NestDepth = depth
		cfg.ParamsPerAttr = 14 // fixed node budget split across levels
		g := workload.New(cfg)
		corpus := g.Corpus()

		_, hybridIngest, err := loadStore(KindHybrid, g, corpus, o)
		if err != nil {
			return nil, err
		}
		_, edgeIngest, err := loadStore(KindEdge, g, corpus, o)
		if err != nil {
			return nil, err
		}
		// No-validation variant: definitions resolve but element types are
		// strings, so no numeric validation applies.
		cNo, err := catalog.Open(g.Schema, catalog.Options{AutoRegister: true})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for _, d := range corpus {
			if _, err := cNo.Ingest("bench", d); err != nil {
				return nil, err
			}
		}
		noValidate := time.Since(start)
		t.AddRow(depth, cfg.ParamsPerAttr, hybridIngest, edgeIngest, noValidate)
	}
	t.Notes = append(t.Notes,
		"expected shape: hybrid ingest ~flat in depth at fixed node count; typed validation within a small constant factor of auto-registered string ingest")
	return t, nil
}

// E7OrderingUpdate reproduces the §5/[19] claim: schema-level global
// ordering avoids the update costs a per-document total ordering pays
// when an attribute is inserted mid-document.
func E7OrderingUpdate(o Options) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "mid-document attribute insertion cost, schema-level vs per-document ordering",
		Claim:   "§5: global ordering at the schema level avoids per-document renumbering [19]",
		Columns: []string{"doc-nodes", "hybrid-insert", "docorder-insert", "renumbered-rows"},
	}
	for _, themes := range []int{5, 20, 80} {
		cfg := workload.Default()
		cfg.Docs = 1
		cfg.ThemesPerDoc = themes
		cfg.KeysPerTheme = 5
		g := workload.New(cfg)
		doc := g.Document(0)

		// Hybrid: AddAttribute appends rows; no ordering maintenance.
		c, err := catalog.Open(g.Schema, catalog.Options{})
		if err != nil {
			return nil, err
		}
		if err := g.RegisterDefinitions(c); err != nil {
			return nil, err
		}
		id, err := c.Ingest("bench", doc)
		if err != nil {
			return nil, err
		}
		frag, _ := xmldoc.ParseString("<theme><themekt>CF NetCDF</themekt><themekey>inserted_keyword</themekey></theme>")
		hybridLat, err := median(o.runs(), func() error {
			return c.AddAttribute(id, "bench", frag.Clone())
		})
		if err != nil {
			return nil, err
		}

		// Per-document total ordering [19]: the same insertion must
		// renumber every node ordered after the insertion point. The
		// simulator stores one row per node with its document-global
		// order and updates the tail.
		sim, renumbered, err := newDocOrderSim(doc)
		if err != nil {
			return nil, err
		}
		simLat, err := median(o.runs(), func() error {
			return sim.insertMid()
		})
		if err != nil {
			return nil, err
		}
		_ = renumbered
		t.AddRow(doc.CountNodes(), hybridLat, simLat, sim.lastRenumbered)
	}
	t.Notes = append(t.Notes, "expected shape: hybrid flat (append-only); per-document ordering cost grows with the node count after the insertion point")
	return t, nil
}

// docOrderSim maintains a per-document global ordering in a relational
// table, as [19]'s global ordering would.
type docOrderSim struct {
	table          *relstore.Table
	n              int
	lastRenumbered int
}

func newDocOrderSim(doc *xmldoc.Node) (*docOrderSim, int, error) {
	db := relstore.NewDatabase()
	tab, err := db.CreateTable("doc_order",
		relstore.Column{Name: "node_id", Type: relstore.KInt, NotNull: true},
		relstore.Column{Name: "ord", Type: relstore.KInt, NotNull: true},
	)
	if err != nil {
		return nil, 0, err
	}
	if _, err := tab.CreateIndex("by_ord", relstore.BTreeIndex, true, "ord"); err != nil {
		return nil, 0, err
	}
	n := 0
	var insertErr error
	doc.Walk(func(*xmldoc.Node) bool {
		n++
		if _, err := tab.Insert(relstore.Row{relstore.Int(int64(n)), relstore.Int(int64(n))}); err != nil {
			insertErr = err
			return false
		}
		return true
	})
	if insertErr != nil {
		return nil, 0, insertErr
	}
	return &docOrderSim{table: tab, n: n}, 0, nil
}

// insertMid inserts one node at the document midpoint, renumbering every
// following node.
func (s *docOrderSim) insertMid() error {
	mid := int64(s.n / 2)
	ids, err := s.table.LookupRange("by_ord",
		relstore.RangeBound{Vals: []relstore.Value{relstore.Int(mid)}, Inclusive: true, Set: true},
		relstore.RangeBound{})
	if err != nil {
		return err
	}
	// Renumber the tail from the back so the unique index never
	// collides.
	for i := len(ids) - 1; i >= 0; i-- {
		r := s.table.Get(ids[i])
		if r == nil {
			continue
		}
		if err := s.table.Update(ids[i], relstore.Row{r[0], relstore.Int(r[1].I + 1)}); err != nil {
			return err
		}
	}
	s.n++
	s.lastRenumbered = len(ids)
	if _, err := s.table.Insert(relstore.Row{relstore.Int(int64(s.n)), relstore.Int(mid)}); err != nil {
		return err
	}
	return nil
}

func ratio(a, b int64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}

package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/workload"
)

// MV1Contention measures what the MVCC snapshot read path buys when
// readers and writers collide. Every mode runs against the same durable
// catalog (real WAL, real per-commit fsync), and a writer goroutine
// commits small mutations while reader goroutines evaluate cheap point
// queries:
//
//   - snapshot: the shipped design. Readers pin an immutable version and
//     never take a lock; the writer's fsync window overlaps with reads.
//   - rwlock: the pre-MVCC design, emulated by wrapping every catalog
//     call in a store-wide RWMutex with the writer holding the exclusive
//     side across its whole commit, fsync included. This is exactly the
//     blocking the old reader/writer lock split imposed.
//
// Cells cover a no-writer reader sweep (the idle baseline), a saturated
// writer (back-to-back commits), and a paced writer (~2ms between
// commits, a realistic ingest trickle). The headline comparisons land in
// the notes: contended reader throughput at 4 readers, snapshot vs
// rwlock, and the snapshot readers' p50 degradation under the paced
// writer relative to the idle baseline.
func MV1Contention(o Options) (*Table, error) {
	t := &Table{
		ID:      "MV1",
		Title:   "MVCC snapshots: reader throughput under writer contention",
		Claim:   "lock-free snapshot readers keep serving during the writer's fsync window, so contended read throughput stays near the idle baseline instead of collapsing behind a store-wide lock",
		Columns: []string{"mode", "writer", "readers", "queries", "qps", "p50", "p95", "commits"},
	}
	// A modest corpus keeps point queries in the few-µs range: the
	// contention mechanism under test is readers losing the writer's
	// fsync window (hundreds of µs), which only shows when a blocked
	// window costs many queries.
	cfg := workload.Default()
	cfg.Docs = o.scale(50)
	g := workload.New(cfg)
	docs := g.Corpus()

	dir, err := os.MkdirTemp("", "hybridcat-mv1-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Caches off: the experiment measures the evaluation read path, not
	// cache hits (and a concurrent writer would churn the generation
	// stamps anyway).
	// CheckpointEvery matters for the emulation: the pre-MVCC design held
	// the write lock across automatic checkpoints too, so the rwlock
	// writer periodically stalls readers for a full snapshot save.
	c, err := catalog.OpenDurable(g.Schema, catalog.Options{DisableCache: true}, catalog.DurabilityOptions{
		WALPath: filepath.Join(dir, "cat.wal"), CheckpointEvery: 64,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := g.RegisterDefinitions(c); err != nil {
		return nil, err
	}
	for _, d := range docs {
		if _, err := c.Ingest("bench", d); err != nil {
			return nil, err
		}
	}

	// Cheap point queries: short enough that a blocked fsync window
	// (hundreds of µs) costs many queries.
	var queries []*catalog.Query
	for i := 0; i < 32; i++ {
		queries = append(queries, g.PointQuery(i, i, i))
	}

	// Single-CPU latency percentiles are noisy (scheduler preemption, GC,
	// checkpoint placement), so each cell runs several times and the table
	// reports per-cell medians.
	window, reps := 800*time.Millisecond, 3
	if o.Quick {
		window, reps = 250*time.Millisecond, 1
	}

	type cell struct {
		queries int
		qps     float64
		p50     time.Duration
		p95     time.Duration
		commits int64
	}

	run := func(rwlock bool, writerPace time.Duration, withWriter bool, readers int) (cell, error) {
		// Level the runtime state between cells: warm every query once and
		// start each cell from a fresh GC cycle, so cell ordering doesn't
		// leak into the latency percentiles.
		for _, q := range queries {
			if _, err := c.Evaluate(q); err != nil {
				return cell{}, err
			}
		}
		runtime.GC()
		var mu sync.RWMutex // the emulated store-wide lock; unused in snapshot mode
		var stop atomic.Bool
		var commits atomic.Int64
		errs := make([]error, readers+1)

		var wg sync.WaitGroup
		if withWriter {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; !stop.Load(); i++ {
					id := int64(1 + i%8)
					if rwlock {
						mu.Lock()
					}
					err := c.SetPublished(id, i%2 == 0)
					if rwlock {
						mu.Unlock()
					}
					if err != nil {
						errs[readers] = err
						return
					}
					commits.Add(1)
					if writerPace > 0 {
						time.Sleep(writerPace)
					}
				}
			}()
		}
		lats := make([][]time.Duration, readers)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := r; !stop.Load(); i++ {
					q := queries[i%len(queries)]
					start := time.Now()
					if rwlock {
						mu.RLock()
					}
					_, err := c.Evaluate(q)
					if rwlock {
						mu.RUnlock()
					}
					if err != nil {
						errs[r] = err
						return
					}
					lats[r] = append(lats[r], time.Since(start))
					// Yield between queries: on a single CPU, spinning readers
					// otherwise hold the processor for full preemption quanta,
					// and the measured latencies carry scheduler artifacts
					// instead of query cost.
					runtime.Gosched()
				}
			}(r)
		}
		start := time.Now()
		time.Sleep(window)
		stop.Store(true)
		wg.Wait()
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return cell{}, err
			}
		}
		var all []time.Duration
		for _, l := range lats {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) time.Duration {
			if len(all) == 0 {
				return 0
			}
			i := int(p * float64(len(all)))
			if i >= len(all) {
				i = len(all) - 1
			}
			return all[i]
		}
		return cell{
			queries: len(all),
			qps:     float64(len(all)) / wall.Seconds(),
			p50:     pct(0.50),
			p95:     pct(0.95),
			commits: commits.Load(),
		}, nil
	}

	const paced = 2 * time.Millisecond
	cells := []struct {
		label  string
		rwlock bool
		writer string
		pace   time.Duration
		with   bool
		read   int
	}{
		{"snapshot", false, "none", 0, false, 1},
		{"snapshot", false, "none", 0, false, 2},
		{"snapshot", false, "none", 0, false, 4},
		{"rwlock", true, "none", 0, false, 4},
		{"snapshot", false, "saturated", 0, true, 4},
		{"rwlock", true, "saturated", 0, true, 4},
		{"snapshot", false, "paced-2ms", paced, true, 4},
		{"rwlock", true, "paced-2ms", paced, true, 4},
	}
	samples := map[string][]cell{}
	for rep := 0; rep < reps; rep++ {
		for _, cl := range cells {
			res, err := run(cl.rwlock, cl.pace, cl.with, cl.read)
			if err != nil {
				return nil, err
			}
			key := fmt.Sprintf("%s/%s/%d", cl.label, cl.writer, cl.read)
			samples[key] = append(samples[key], res)
		}
	}
	medianCell := func(key string) cell {
		s := append([]cell(nil), samples[key]...)
		sort.Slice(s, func(i, j int) bool { return s[i].qps < s[j].qps })
		mid := s[len(s)/2]
		// p50/p95 medians independently of the qps-median run, so one
		// outlier repetition cannot pick both.
		p50s := make([]time.Duration, len(s))
		p95s := make([]time.Duration, len(s))
		for i, c := range s {
			p50s[i], p95s[i] = c.p50, c.p95
		}
		sort.Slice(p50s, func(i, j int) bool { return p50s[i] < p50s[j] })
		sort.Slice(p95s, func(i, j int) bool { return p95s[i] < p95s[j] })
		mid.p50, mid.p95 = p50s[len(p50s)/2], p95s[len(p95s)/2]
		return mid
	}
	results := map[string]cell{}
	for _, cl := range cells {
		key := fmt.Sprintf("%s/%s/%d", cl.label, cl.writer, cl.read)
		res := medianCell(key)
		results[key] = res
		t.AddRow(cl.label, cl.writer, cl.read, res.queries,
			fmt.Sprintf("%.0f", res.qps), res.p50, res.p95, res.commits)
	}

	idle := results["snapshot/none/4"]
	snapSat := results["snapshot/saturated/4"]
	rwSat := results["rwlock/saturated/4"]
	snapPaced := results["snapshot/paced-2ms/4"]
	if rwSat.qps > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"concurrent-reader scaling at 4 readers (saturated writer): snapshot %.0f qps vs rwlock %.0f qps = %.1fx (target >= 2.5x)",
			snapSat.qps, rwSat.qps, snapSat.qps/rwSat.qps))
	}
	if idle.p50 > 0 {
		deg := 100 * (float64(snapPaced.p50) - float64(idle.p50)) / float64(idle.p50)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"reader p50 under paced 1-writer/4-reader mix: %s vs idle %s = %+.1f%% degradation (target < 20%%)",
			fmtDuration(snapPaced.p50), fmtDuration(idle.p50), deg))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("each cell is the median of %d repetitions of a %s window", reps, fmtDuration(window)),
		"the rwlock rows emulate the pre-MVCC store-wide reader/writer lock: the writer holds the exclusive side across its whole commit, per-record fsync included, so readers stall for the fsync window on every commit",
		fmt.Sprintf("GOMAXPROCS=%d on this machine — reader-count scaling is bounded by the core count; the snapshot design's gain here is overlapping reads with the writer's fsync wait, not extra parallelism", runtime.GOMAXPROCS(0)))
	return t, nil
}

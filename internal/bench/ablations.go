package bench

import (
	"database/sql"
	"fmt"
	"runtime"
	"strconv"
	"time"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/sqldriver"
	"github.com/gridmeta/hybridcat/internal/workload"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
)

// A1InvertedList ablates the sub-attribute inverted list: the full list
// (any-depth links, one join) vs. direct-parent links only (recursive
// level-by-level chase).
func A1InvertedList(o Options) (*Table, error) {
	t := &Table{
		ID:      "A1",
		Title:   "sub-attribute inverted list ON vs OFF (recursive fallback)",
		Claim:   "§4: the inverted list lets containment queries avoid recursion",
		Columns: []string{"depth", "inverted-list", "recursive", "speedup"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(300)
	cfg.NestDepth = 6
	cfg.ParamsPerAttr = 14
	g := workload.New(cfg)
	corpus := g.Corpus()

	build := func(disable bool) (*catalog.Catalog, error) {
		c, err := catalog.Open(g.Schema, catalog.Options{DisableInvertedList: disable})
		if err != nil {
			return nil, err
		}
		if err := g.RegisterDefinitions(c); err != nil {
			return nil, err
		}
		for _, d := range corpus {
			if _, err := c.Ingest("bench", d); err != nil {
				return nil, err
			}
		}
		return c, nil
	}
	withList, err := build(false)
	if err != nil {
		return nil, err
	}
	withoutList, err := build(true)
	if err != nil {
		return nil, err
	}
	for depth := 1; depth <= 6; depth++ {
		qi := 0
		on, err := median(o.runs(), func() error {
			qi++
			_, err := withList.Evaluate(g.NestedQuery(qi, qi, depth))
			return err
		})
		if err != nil {
			return nil, err
		}
		qi = 0
		off, err := median(o.runs(), func() error {
			qi++
			_, err := withoutList.Evaluate(g.NestedQuery(qi, qi, depth))
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(depth, on, off, ratio(int64(off), int64(on)))
	}
	t.Notes = append(t.Notes, "expected shape: inverted list ~flat; recursive fallback grows with depth")
	return t, nil
}

// A2ClobGranularity ablates CLOB granularity: per-attribute CLOBs
// (hybrid) vs one whole-document CLOB, on selective retrieval and
// storage.
func A2ClobGranularity(o Options) (*Table, error) {
	t := &Table{
		ID:      "A2",
		Title:   "CLOB granularity: per-attribute vs whole-document",
		Claim:   "§2: per-attribute CLOBs keep responses buildable by set operations without reparsing documents",
		Columns: []string{"metric", "per-attribute (hybrid)", "whole-doc (clob)"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(300)
	g := workload.New(cfg)
	corpus := g.Corpus()
	hybrid, _, err := loadStore(KindHybrid, g, corpus, o)
	if err != nil {
		return nil, err
	}
	clob, _, err := loadStore(KindClob, g, corpus, o)
	if err != nil {
		return nil, err
	}
	ids := make([]int64, 50)
	for i := range ids {
		ids[i] = int64(i + 1)
	}
	hFetch, err := median(o.runs(), func() error { _, err := hybrid.Fetch(ids); return err })
	if err != nil {
		return nil, err
	}
	cFetch, err := median(o.runs(), func() error { _, err := clob.Fetch(ids); return err })
	if err != nil {
		return nil, err
	}
	t.AddRow("fetch 50 docs", hFetch, cFetch)
	qi := 0
	hQry, err := median(o.runs(), func() error {
		qi++
		_, err := hybrid.Evaluate(g.PointQuery(qi, qi, qi))
		return err
	})
	if err != nil {
		return nil, err
	}
	qi = 0
	cQry, err := median(o.runs(), func() error {
		qi++
		_, err := clob.Evaluate(g.PointQuery(qi, qi, qi))
		return err
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("point query", hQry, cQry)
	t.AddRow("storage bytes", hybrid.StorageBytes(), clob.StorageBytes())
	t.Notes = append(t.Notes, "expected shape: whole-doc CLOB fetches marginally faster (one string) but queries orders slower (parse every doc); hybrid pays bounded extra storage")
	return t, nil
}

// A3TypedColumns ablates the dual string/numeric element columns: range
// queries through the typed nval index vs a scan that parses strings.
func A3TypedColumns(o Options) (*Table, error) {
	t := &Table{
		ID:      "A3",
		Title:   "typed numeric column vs string-scan for range predicates",
		Claim:   "shredding values into typed columns makes range criteria indexable",
		Columns: []string{"selectivity", "nval-index", "string-scan", "speedup"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(600)
	g := workload.New(cfg)
	c, err := catalog.Open(g.Schema, catalog.Options{})
	if err != nil {
		return nil, err
	}
	if err := g.RegisterDefinitions(c); err != nil {
		return nil, err
	}
	for _, d := range g.Corpus() {
		if _, err := c.Ingest("bench", d); err != nil {
			return nil, err
		}
	}
	elemT := c.DB.MustTable(catalog.TElemData)
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		q := g.RangeQuery(0, 0, frac)
		indexed, err := median(o.runs(), func() error {
			_, err := c.Evaluate(q)
			return err
		})
		if err != nil {
			return nil, err
		}
		// String-scan simulation: no numeric column — every elem_data row
		// is scanned and its string value parsed before comparing.
		hi := float64(cfg.ValueCardinality) * 250 * frac
		scan, err := median(o.runs(), func() error {
			count := 0
			elemT.Scan(func(_ int64, r relstore.Row) bool {
				if f, perr := strconv.ParseFloat(r[5].S, 64); perr == nil && f < hi {
					count++
				}
				return true
			})
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f%%", frac*100), indexed, scan, ratio(int64(scan), int64(indexed)))
	}
	t.Notes = append(t.Notes, "expected shape: typed index wins at low selectivity; the gap narrows as the range widens")
	return t, nil
}

// A4SQLOverhead measures the cost of driving the same relational
// operations through the database/sql layer instead of the engine API.
func A4SQLOverhead(o Options) (*Table, error) {
	t := &Table{
		ID:      "A4",
		Title:   "engine API vs database/sql driver overhead",
		Claim:   "substrate check: the SQL surface adds parse/convert overhead but identical results",
		Columns: []string{"operation", "engine-api", "database/sql", "overhead"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(300)
	g := workload.New(cfg)
	c, err := catalog.Open(g.Schema, catalog.Options{})
	if err != nil {
		return nil, err
	}
	if err := g.RegisterDefinitions(c); err != nil {
		return nil, err
	}
	for _, d := range g.Corpus() {
		if _, err := c.Ingest("bench", d); err != nil {
			return nil, err
		}
	}
	dsn := fmt.Sprintf("bench-a4-%d", time.Now().UnixNano())
	sqldriver.Register(dsn, c.DB)
	defer sqldriver.Unregister(dsn)
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	// Same aggregate both ways: elements per attribute definition.
	elemT := c.DB.MustTable(catalog.TElemData)
	engine, err := median(o.runs(), func() error {
		it := relstore.GroupBy(relstore.ScanTable(elemT), []int{1}, []relstore.AggSpec{
			{Func: relstore.AggCount, Name: "n"},
		})
		relstore.Collect(it)
		return nil
	})
	if err != nil {
		return nil, err
	}
	viaSQL, err := median(o.runs(), func() error {
		rows, err := db.Query("SELECT attr_id, COUNT(*) AS n FROM elem_data GROUP BY attr_id")
		if err != nil {
			return err
		}
		defer rows.Close()
		for rows.Next() {
			var id, n int64
			if err := rows.Scan(&id, &n); err != nil {
				return err
			}
		}
		return rows.Err()
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("group-by count", engine, viaSQL, ratio(int64(viaSQL), int64(engine)))

	// Point lookup both ways.
	enginePt, err := median(o.runs(), func() error {
		_, err := elemT.LookupEqual("elem_data_by_object", relstore.Int(1))
		return err
	})
	if err != nil {
		return nil, err
	}
	sqlPt, err := median(o.runs(), func() error {
		rows, err := db.Query("SELECT elem_id FROM elem_data WHERE object_id = ?", int64(1))
		if err != nil {
			return err
		}
		defer rows.Close()
		for rows.Next() {
			var id int64
			if err := rows.Scan(&id); err != nil {
				return err
			}
		}
		return rows.Err()
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("point lookup", enginePt, sqlPt, ratio(int64(sqlPt), int64(enginePt)))
	t.Notes = append(t.Notes, "the planner serves single-table predicates through indexes; the remaining overhead is per-call parse/plan plus driver value conversion, which is why the catalog pipeline drives the engine API directly")
	return t, nil
}

// A5ParallelIngest measures batch-ingest phase scaling: the shred phase
// (CPU-bound tree walks, serialization, validation) parallelizes across
// workers, while index-maintaining row insertion stays serialized for
// consistency and bounds the end-to-end gain (Amdahl).
func A5ParallelIngest(o Options) (*Table, error) {
	t := &Table{
		ID:      "A5",
		Title:   "batch ingest: shred-phase scaling vs end-to-end",
		Claim:   "shredding parallelizes; the serialized insert phase is the end-to-end floor",
		Columns: []string{"workers", "shred-phase", "shred-speedup", "end-to-end", "e2e-speedup"},
	}
	cfg := workload.Default()
	cfg.Docs = o.scale(400)
	cfg.ThemesPerDoc = 10
	cfg.KeysPerTheme = 8
	cfg.DynamicAttrsPerDoc = 6
	cfg.ParamsPerAttr = 20
	cfg.NestDepth = 3
	g := workload.New(cfg)
	docs := g.Corpus()

	shredSweep := func(workers int) (time.Duration, error) {
		c, err := catalog.Open(g.Schema, catalog.Options{})
		if err != nil {
			return 0, err
		}
		if err := g.RegisterDefinitions(c); err != nil {
			return 0, err
		}
		sh := core.NewShredder(c.Schema, c.Reg)
		start := time.Now()
		next := make(chan int, len(docs))
		for i := range docs {
			next <- i
		}
		close(next)
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			go func() {
				for i := range next {
					if _, err := sh.Shred(docs[i], core.Options{Owner: "bench"}); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}()
		}
		for w := 0; w < workers; w++ {
			if err := <-errs; err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	var shredBase, e2eBase time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		shred, err := shredSweep(workers)
		if err != nil {
			return nil, err
		}
		c, err := catalog.Open(g.Schema, catalog.Options{})
		if err != nil {
			return nil, err
		}
		if err := g.RegisterDefinitions(c); err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := c.IngestBatch("bench", docs, workers); err != nil {
			return nil, err
		}
		e2e := time.Since(start)
		if workers == 1 {
			shredBase, e2eBase = shred, e2e
		}
		t.AddRow(workers, shred, ratio(int64(shredBase), int64(shred)),
			e2e, ratio(int64(e2eBase), int64(e2e)))
	}
	t.Notes = append(t.Notes,
		"expected shape: shred phase scales with available cores; end-to-end is bounded by the serialized index-maintaining insert phase",
		fmt.Sprintf("GOMAXPROCS=%d on this machine — with a single CPU no parallel speedup is observable", runtime.GOMAXPROCS(0)))
	return t, nil
}

// ingestDoc is a tiny helper kept for symmetry with bench_test.go.
func ingestDoc(c *catalog.Catalog, d *xmldoc.Node) error {
	_, err := c.Ingest("bench", d)
	return err
}

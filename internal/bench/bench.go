// Package bench is the experiment harness: it builds identical corpora
// in every store, measures the operations each experiment defines, and
// renders the table the experiment's paper claim predicts. EXPERIMENTS.md
// records the expected vs. measured shapes; cmd/mdbench prints the same
// tables from the command line, and bench_test.go exposes each experiment
// as a testing.B benchmark.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/gridmeta/hybridcat/internal/baseline"
	"github.com/gridmeta/hybridcat/internal/baseline/clobonly"
	"github.com/gridmeta/hybridcat/internal/baseline/edgetable"
	"github.com/gridmeta/hybridcat/internal/baseline/inlining"
	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/nativexml"
	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/workload"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
)

// Table is one experiment's printable result. Instruments carries the
// registry counter deltas observed across the run when the harness was
// given a metrics registry (mdbench -instruments), so exported JSON
// results pair every wall-clock number with the instrument-derived
// work counts (rows read, cache hits, WAL fsyncs, ...) behind it.
type Table struct {
	ID          string
	Title       string
	Claim       string
	Columns     []string
	Rows        [][]string
	Notes       []string
	Instruments map[string]float64 `json:",omitempty"`
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = fmtDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// StoreKind names the comparison systems.
type StoreKind string

// Store kinds.
const (
	KindHybrid    StoreKind = "hybrid"
	KindInlining  StoreKind = "inlining"
	KindEdge      StoreKind = "edge"
	KindClob      StoreKind = "clob"
	KindNativeXML StoreKind = "nativexml"
)

// AllKinds lists every comparison system.
var AllKinds = []StoreKind{KindHybrid, KindInlining, KindEdge, KindClob, KindNativeXML}

// NewStore builds an empty store of the given kind over the LEAD schema,
// with the workload's dynamic definitions registered where applicable.
// A hybrid store attaches the harness's metrics registry (if any), so
// instrumented runs count the catalog work each experiment induces.
func NewStore(kind StoreKind, g *workload.Generator, o Options) (baseline.Store, error) {
	switch kind {
	case KindHybrid:
		c, err := catalog.Open(g.Schema, catalog.Options{Metrics: o.Metrics})
		if err != nil {
			return nil, err
		}
		if err := g.RegisterDefinitions(c); err != nil {
			return nil, err
		}
		return baseline.Adapter{C: c}, nil
	case KindInlining:
		return inlining.New(g.Schema)
	case KindEdge:
		return edgetable.New(g.Schema)
	case KindClob:
		return clobonly.New(g.Schema)
	case KindNativeXML:
		return nativexml.New(g.Schema, "themekey", "attrlabl", "attrv", "enttypl"), nil
	}
	return nil, fmt.Errorf("bench: unknown store kind %q", kind)
}

// loadStore fills a fresh store of the given kind with the corpus,
// returning the store and the total ingest wall time.
func loadStore(kind StoreKind, g *workload.Generator, docs []*xmldoc.Node, o Options) (baseline.Store, time.Duration, error) {
	st, err := NewStore(kind, g, o)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	for _, d := range docs {
		if _, err := st.Ingest("bench", d); err != nil {
			return nil, 0, fmt.Errorf("%s ingest: %w", kind, err)
		}
	}
	return st, time.Since(start), nil
}

// median of repeated timings of f; f runs once for warmup first.
func median(runs int, f func() error) (time.Duration, error) {
	if err := f(); err != nil {
		return 0, err
	}
	times := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

// Options tunes experiment scale; Quick shrinks corpora for smoke runs.
// A non-nil Metrics registry is attached to every hybrid catalog the
// experiments open, and Run diffs its snapshot across the experiment
// into Table.Instruments.
type Options struct {
	Quick   bool
	Metrics *obs.Registry
}

func (o Options) scale(n int) int {
	if o.Quick {
		n /= 5
		if n < 20 {
			n = 20
		}
	}
	return n
}

func (o Options) runs() int {
	if o.Quick {
		return 3
	}
	return 9
}

package bench

import (
	"fmt"
	"sort"

	"github.com/gridmeta/hybridcat/internal/obs"
)

// Experiment is one runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Table, error)
}

var experiments = map[string]Experiment{
	"F1":  {"F1", "Figure 1 pipeline round trip", F1RoundTrip},
	"F2":  {"F2", "Figure 2 schema partitioning and ordering", F2SchemaOrdering},
	"F3":  {"F3", "Figure 3 shredding example", F3Shred},
	"F4":  {"F4", "Figure 4 worked query", F4WorkedQuery},
	"E1":  {"E1", "relational vs native XML throughput", E1Throughput},
	"E2":  {"E2", "query latency vs corpus size", E2QueryScale},
	"E3":  {"E3", "query latency vs nesting depth", E3NestingDepth},
	"E4":  {"E4", "response construction time", E4ResponseBuild},
	"E5":  {"E5", "storage per approach", E5Storage},
	"E6":  {"E6", "dynamic attribute ingest and validation", E6DynamicAttrs},
	"E7":  {"E7", "ordering maintenance on insert", E7OrderingUpdate},
	"A1":  {"A1", "ablation: inverted list", A1InvertedList},
	"A2":  {"A2", "ablation: CLOB granularity", A2ClobGranularity},
	"A3":  {"A3", "ablation: typed columns", A3TypedColumns},
	"A4":  {"A4", "ablation: SQL layer overhead", A4SQLOverhead},
	"A5":  {"A5", "ablation: parallel batch ingest", A5ParallelIngest},
	"C1":  {"C1", "concurrent readers: query throughput scaling", C1ConcurrentReaders},
	"MV1": {"MV1", "MVCC snapshots: reader throughput under writer contention", MV1Contention},
	"C2":  {"C2", "read caching: cold vs warm vs mutating workloads", C2CacheEffect},
	"R1":  {"R1", "WAL durability: ingest overhead and recovery time", R1Durability},
	"R2":  {"R2", "group commit and replication: writer scaling and replica lag", R2Replication},
	"O1":  {"O1", "observability overhead: metrics+tracing on vs off", O1MetricsOverhead},
	"B1":  {"B1", "bitmap posting lists: multi-criterion set ops vs row-at-a-time", B1BitmapSetOps},
	"S1":  {"S1", "owner-hash sharding: throughput vs shard count", S1ShardScaling},
	"IR1": {"IR1", "ranked retrieval: BM25 top-k vs structural keyword baseline", IR1RankedSearch},
}

// IDs lists the experiment IDs in a stable order.
func IDs() []string {
	out := make([]string, 0, len(experiments))
	for id := range experiments {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := experiments[id]
	return e, ok
}

// Run executes one experiment by ID. With a metrics registry in the
// options, the registry is snapshotted around the run and the counter
// deltas land in Table.Instruments — wall-clock numbers come out paired
// with the instrument-derived work counts that produced them.
func Run(id string, o Options) (*Table, error) {
	e, ok := experiments[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	if o.Metrics == nil {
		return e.Run(o)
	}
	before := o.Metrics.Snapshot()
	tab, err := e.Run(o)
	if err != nil {
		return nil, err
	}
	tab.Instruments = obs.DiffSnapshots(before, o.Metrics.Snapshot())
	return tab, nil
}

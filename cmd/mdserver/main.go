// mdserver runs the catalog as an HTTP/XML grid metadata service over
// the LEAD schema (or a schema DSL file). See internal/service for the
// endpoint list.
//
//	mdserver -addr :8080
//	mdserver -wal catalog.wal                        # durable: WAL + crash recovery
//	mdserver -wal catalog.wal -checkpoint-every 256  # bound recovery time
//	mdserver -wal catalog.wal -group-commit          # coalesce concurrent fsyncs
//	mdserver -load catalog.snap -save catalog.snap   # snapshot-only persistence
//	mdserver -ontology terms.txt                     # enable ?expand=1
//	mdserver -replica-of http://primary:8080 -max-lag 64   # read replica
//	mdserver -shards 4 -shard-root /data/shards      # owner-partitioned cluster
//	curl -X POST --data-binary @doc.xml 'localhost:8080/ingest?owner=alice'
//	curl -X POST --data @query.json localhost:8080/query
//
// With -wal, every mutation is committed to the write-ahead log before
// its HTTP response is sent, and startup recovers from the latest
// checkpoint snapshot plus the log; SIGINT/SIGTERM drains in-flight
// requests and writes a final checkpoint. With -save (and no -wal), a
// snapshot is written atomically on SIGINT/SIGTERM before exit.
// -group-commit batches concurrent commits into one fsync (see
// internal/wal); -replica-of turns the server into a read-only replica
// that tails the primary's /wal/stream and refuses reads once it lags
// more than -max-lag records behind.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/obs"
	"github.com/gridmeta/hybridcat/internal/ontology"
	"github.com/gridmeta/hybridcat/internal/replica"
	"github.com/gridmeta/hybridcat/internal/retry"
	"github.com/gridmeta/hybridcat/internal/service"
	"github.com/gridmeta/hybridcat/internal/shard"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		schemaPath = flag.String("schema", "", "annotated schema DSL file (default: built-in LEAD)")
		autoReg    = flag.Bool("autoregister", false, "auto-register unknown dynamic attributes at ingest")
		walPath    = flag.String("wal", "", "write-ahead log file: mutations are durable before they are acknowledged, startup recovers snapshot+log")
		ckptEvery  = flag.Int("checkpoint-every", 1024, "with -wal: checkpoint after this many committed records (0 = only at shutdown)")
		loadPath   = flag.String("load", "", "load a catalog snapshot at startup (ignored when -wal already has a snapshot)")
		savePath   = flag.String("save", "", "write a catalog snapshot on shutdown (snapshot-only mode; implied by -wal)")
		ontPath    = flag.String("ontology", "", "term hierarchy file enabling ?expand=1 queries")
		qWorkers   = flag.Int("query-workers", 0, "worker pool size for intra-query fan-out (0 = GOMAXPROCS, 1 = sequential)")
		cacheSize  = flag.Int("cache-size", 0, "entries per read-cache layer (0 = default)")
		cacheOff   = flag.Bool("cache-off", false, "disable the generation-stamped read caches")
		bitmapsOff = flag.Bool("bitmaps-off", false, "evaluate queries on the row-at-a-time oracle path instead of compressed bitmap posting lists")
		textOff    = flag.Bool("textindex-off", false, "disable the BM25 text index: POST /search rank clauses answer 400, structural queries are unaffected")
		metricsOn  = flag.Bool("metrics", true, "expose the metrics registry at GET /metrics and record query traces at /debug/tracez")
		traceDepth = flag.Int("trace-depth", 0, "slow-query trace ring size (0 = default, negative = tracing off)")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/ and expvar at /debug/vars")
		groupOn    = flag.Bool("group-commit", false, "with -wal: coalesce concurrent commits into one fsync per batch")
		groupWait  = flag.Duration("group-commit-wait", 0, "with -group-commit: batch leader's collection window (0 = flush immediately)")
		groupBatch = flag.Int("group-commit-batch", 0, "with -group-commit: max records per batch (0 = default)")
		replicaOf  = flag.String("replica-of", "", "run as a read replica of this primary base URL (tails /wal/stream; mutations answer 503)")
		maxLag     = flag.Uint64("max-lag", 0, "with -replica-of: refuse reads once the replica lags this many log records behind the primary (0 = serve regardless)")
		shards     = flag.Int("shards", 0, "run an owner-partitioned cluster of this many embedded catalogs (fixed at cluster creation; 0 = single catalog)")
		shardRoot  = flag.String("shard-root", "shards", "with -shards: cluster directory holding the routing table and default shard dirs")
		shardDirs  = flag.String("shard-dirs", "", "with -shards: comma-separated shard directories on creation (default shard-root/shard-i)")
	)
	flag.Parse()

	schema, err := loadSchema(*schemaPath)
	if err != nil {
		log.Fatal("mdserver: ", err)
	}
	opts := catalog.Options{
		AutoRegister:     *autoReg,
		QueryWorkers:     *qWorkers,
		CacheSize:        *cacheSize,
		DisableCache:     *cacheOff,
		DisableBitmaps:   *bitmapsOff,
		DisableTextIndex: *textOff,
		TraceDepth:       *traceDepth,
	}
	if *metricsOn {
		opts.Metrics = obs.NewRegistry()
	}
	if *shards > 0 || *shardDirs != "" {
		if *walPath != "" || *savePath != "" || *loadPath != "" || *replicaOf != "" {
			log.Fatal("mdserver: -shards is incompatible with -wal/-save/-load/-replica-of (each shard has its own WAL under its directory)")
		}
		runSharded(schema, opts, *addr, *shards, *shardRoot, *shardDirs,
			*ckptEvery, *groupOn, *groupWait, *groupBatch, *pprofOn)
		return
	}
	var (
		cat        *catalog.Catalog
		rep        *replica.Replica
		tailCancel context.CancelFunc
	)
	if *replicaOf != "" {
		if *walPath != "" || *savePath != "" || *loadPath != "" {
			log.Fatal("mdserver: -replica-of is incompatible with -wal/-save/-load (a replica's state is the primary's log)")
		}
		rep, err = replica.New(replica.Options{
			Primary: *replicaOf,
			Schema:  schema,
			Catalog: opts,
			Retry:   retry.DefaultPolicy,
		})
		if err != nil {
			log.Fatal("mdserver: ", err)
		}
		cat = rep.Catalog()
		var tailCtx context.Context
		tailCtx, tailCancel = context.WithCancel(context.Background())
		go func() {
			if err := rep.Run(tailCtx); !errors.Is(err, context.Canceled) {
				log.Print("mdserver: tailer: ", err)
			}
		}()
	} else {
		dopts := catalog.DurabilityOptions{
			WALPath: *walPath, CheckpointEvery: *ckptEvery,
			GroupCommit: *groupOn, GroupCommitWait: *groupWait, GroupCommitBatch: *groupBatch,
		}
		cat, err = openCatalog(schema, opts, dopts, *loadPath)
		if err != nil {
			log.Fatal("mdserver: ", err)
		}
	}
	srv := service.New(cat)
	if rep != nil {
		srv.Replica = rep
		srv.MaxLag = *maxLag
	}
	if *ontPath != "" {
		data, err := os.ReadFile(*ontPath)
		if err != nil {
			log.Fatal("mdserver: ", err)
		}
		o, err := ontology.Parse(string(data))
		if err != nil {
			log.Fatal("mdserver: ", err)
		}
		srv.SetOntology(o)
		log.Printf("mdserver: ontology with %d terms loaded", o.Len())
	}

	var handler http.Handler = srv.Handler()
	if *pprofOn {
		handler = withProfiling(handler)
	}
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: logRequests(handler),
		// Slow-client ceilings: a peer that trickles its headers or holds
		// an idle keep-alive connection cannot pin a goroutine forever.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGINT/SIGTERM: stop accepting, drain in-flight requests, then make
	// the final state durable (checkpoint with -wal, atomic snapshot with
	// -save).
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		<-sig
		log.Print("mdserver: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Print("mdserver: shutdown: ", err)
		}
		if tailCancel != nil {
			tailCancel()
		}
		if *walPath != "" {
			if err := cat.Close(); err != nil {
				log.Fatal("mdserver: final checkpoint: ", err)
			}
			log.Printf("mdserver: final checkpoint written to %s.snap", *walPath)
		} else if *savePath != "" {
			if err := cat.SaveFile(nil, *savePath); err != nil {
				log.Fatal("mdserver: snapshot: ", err)
			}
			log.Printf("mdserver: snapshot written to %s", *savePath)
		}
	}()

	workers := *qWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	caching := "read caches off"
	if cat.CachingEnabled() {
		size := *cacheSize
		if size == 0 {
			size = catalog.DefaultCacheSize
		}
		caching = fmt.Sprintf("read caches %d entries/layer (/debug/cachez)", size)
	}
	durable := "no durability"
	if *walPath != "" {
		durable = fmt.Sprintf("WAL %s, checkpoint every %d", *walPath, *ckptEvery)
		if *groupOn {
			durable += fmt.Sprintf(", group commit (wait %v)", *groupWait)
		}
	}
	if rep != nil {
		durable = fmt.Sprintf("read replica of %s (max lag %d)", *replicaOf, *maxLag)
	}
	observing := "metrics off"
	if *metricsOn {
		observing = "metrics on (/metrics, /debug/tracez)"
		if *pprofOn {
			observing += ", pprof on (/debug/pprof/)"
		}
	}
	log.Printf("mdserver: schema %s, %d metadata attributes, listening on %s (concurrent reads, %d query workers, %s, %s, %s)",
		schema.Name, len(schema.Attributes), *addr, workers, caching, durable, observing)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal("mdserver: ", err)
	}
	<-done
}

// runSharded serves an owner-partitioned cluster: N embedded durable
// catalogs under -shard-root, each with its own WAL and checkpoints,
// behind the scatter-gather router (see internal/shard). SIGINT/SIGTERM
// drains requests and checkpoints every shard.
func runSharded(schema *xmlschema.Schema, opts catalog.Options, addr string,
	shards int, root, dirsCSV string, ckptEvery int,
	groupOn bool, groupWait time.Duration, groupBatch int, pprofOn bool) {
	var dirs []string
	if dirsCSV != "" {
		dirs = strings.Split(dirsCSV, ",")
		if shards == 0 {
			shards = len(dirs)
		}
	}
	cl, err := shard.Open(shard.Options{
		Schema:  schema,
		Root:    root,
		Shards:  shards,
		Dirs:    dirs,
		Catalog: opts,
		Durability: catalog.DurabilityOptions{
			CheckpointEvery: ckptEvery,
			GroupCommit:     groupOn, GroupCommitWait: groupWait, GroupCommitBatch: groupBatch,
		},
	})
	if err != nil {
		log.Fatal("mdserver: ", err)
	}

	var handler http.Handler = service.NewSharded(cl).Handler()
	if pprofOn {
		handler = withProfiling(handler)
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           logRequests(handler),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		<-sig
		log.Print("mdserver: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Print("mdserver: shutdown: ", err)
		}
		if err := cl.Close(); err != nil {
			log.Fatal("mdserver: final shard checkpoints: ", err)
		}
		log.Printf("mdserver: %d shard checkpoints written under %s", cl.Shards(), root)
	}()
	total := 0
	for _, st := range cl.Stats() {
		total += st.Objects
	}
	log.Printf("mdserver: schema %s, %d-shard cluster under %s (%d objects recovered), listening on %s",
		schema.Name, cl.Shards(), root, total, addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal("mdserver: ", err)
	}
	<-done
}

// openCatalog builds the catalog according to the persistence flags:
// -wal recovers snapshot+log and attaches durability; a legacy -load
// snapshot seeds a durable catalog only when the WAL has no state yet;
// plain -load and in-memory modes are unchanged.
func openCatalog(schema *xmlschema.Schema, opts catalog.Options, dopts catalog.DurabilityOptions, loadPath string) (*catalog.Catalog, error) {
	if walPath := dopts.WALPath; walPath != "" {
		cat, err := catalog.OpenDurable(schema, opts, dopts)
		if err != nil {
			return nil, err
		}
		if cat.ObjectCount() == 0 && loadPath != "" {
			// Migrate a legacy snapshot into the durable store: load it,
			// checkpoint it, and continue on the WAL.
			cat.Close()
			loaded, err := catalog.LoadFile(schema, opts, nil, loadPath)
			if err != nil {
				return nil, fmt.Errorf("migrating %s: %w", loadPath, err)
			}
			if err := loaded.SaveFile(nil, walPath+".snap"); err != nil {
				return nil, fmt.Errorf("migrating %s: %w", loadPath, err)
			}
			if cat, err = catalog.OpenDurable(schema, opts, dopts); err != nil {
				return nil, err
			}
			log.Printf("mdserver: migrated %d objects from %s into the durable store", cat.ObjectCount(), loadPath)
		}
		st := cat.DurabilityStats()
		log.Printf("mdserver: recovered %d objects (WAL seq %d, %d bytes)", cat.ObjectCount(), st.WAL.LastSeq, st.WAL.Size)
		return cat, nil
	}
	if loadPath != "" {
		cat, err := catalog.LoadFile(schema, opts, nil, loadPath)
		if err != nil {
			return nil, err
		}
		log.Printf("mdserver: loaded %d objects from %s", cat.ObjectCount(), loadPath)
		return cat, nil
	}
	return catalog.Open(schema, opts)
}

func loadSchema(path string) (*xmlschema.Schema, error) {
	if path == "" {
		return xmlschema.LEAD()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".xsd") {
		return xmlschema.ParseXSD(path, string(data), "")
	}
	return xmlschema.ParseDSL(path, string(data))
}

// withProfiling mounts the net/http/pprof handlers and the expvar
// dump in front of the service mux. Opt-in via -pprof: the profiling
// endpoints expose stack traces and heap contents, which a metadata
// service should not serve by default.
func withProfiling(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/", next)
	return mux
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		log.Printf("%s %s", r.Method, r.URL.Path)
		next.ServeHTTP(w, r)
	})
}

// mdserver runs the catalog as an HTTP/XML grid metadata service over
// the LEAD schema (or a schema DSL file). See internal/service for the
// endpoint list.
//
//	mdserver -addr :8080
//	mdserver -load catalog.snap -save catalog.snap   # persist across runs
//	mdserver -ontology terms.txt                     # enable ?expand=1
//	curl -X POST --data-binary @doc.xml 'localhost:8080/ingest?owner=alice'
//	curl -X POST --data @query.json localhost:8080/query
//
// With -save, the catalog snapshot is written on SIGINT/SIGTERM before
// exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/ontology"
	"github.com/gridmeta/hybridcat/internal/service"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		schemaPath = flag.String("schema", "", "annotated schema DSL file (default: built-in LEAD)")
		autoReg    = flag.Bool("autoregister", false, "auto-register unknown dynamic attributes at ingest")
		loadPath   = flag.String("load", "", "load a catalog snapshot at startup")
		savePath   = flag.String("save", "", "write a catalog snapshot on shutdown")
		ontPath    = flag.String("ontology", "", "term hierarchy file enabling ?expand=1 queries")
		qWorkers   = flag.Int("query-workers", 0, "worker pool size for intra-query fan-out (0 = GOMAXPROCS, 1 = sequential)")
		cacheSize  = flag.Int("cache-size", 0, "entries per read-cache layer (0 = default)")
		cacheOff   = flag.Bool("cache-off", false, "disable the generation-stamped read caches")
	)
	flag.Parse()

	schema, err := loadSchema(*schemaPath)
	if err != nil {
		log.Fatal("mdserver: ", err)
	}
	opts := catalog.Options{
		AutoRegister: *autoReg,
		QueryWorkers: *qWorkers,
		CacheSize:    *cacheSize,
		DisableCache: *cacheOff,
	}
	var cat *catalog.Catalog
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatal("mdserver: ", err)
		}
		cat, err = catalog.Load(schema, opts, f)
		f.Close()
		if err != nil {
			log.Fatal("mdserver: ", err)
		}
		log.Printf("mdserver: loaded %d objects from %s", cat.ObjectCount(), *loadPath)
	} else {
		cat, err = catalog.Open(schema, opts)
		if err != nil {
			log.Fatal("mdserver: ", err)
		}
	}
	srv := service.New(cat)
	if *ontPath != "" {
		data, err := os.ReadFile(*ontPath)
		if err != nil {
			log.Fatal("mdserver: ", err)
		}
		o, err := ontology.Parse(string(data))
		if err != nil {
			log.Fatal("mdserver: ", err)
		}
		srv.SetOntology(o)
		log.Printf("mdserver: ontology with %d terms loaded", o.Len())
	}

	if *savePath != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			f, err := os.Create(*savePath)
			if err != nil {
				log.Fatal("mdserver: snapshot: ", err)
			}
			if err := cat.Save(f); err != nil {
				log.Fatal("mdserver: snapshot: ", err)
			}
			if err := f.Close(); err != nil {
				log.Fatal("mdserver: snapshot: ", err)
			}
			log.Printf("mdserver: snapshot written to %s", *savePath)
			os.Exit(0)
		}()
	}

	workers := *qWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	caching := "read caches off"
	if cat.CachingEnabled() {
		size := *cacheSize
		if size == 0 {
			size = catalog.DefaultCacheSize
		}
		caching = fmt.Sprintf("read caches %d entries/layer (/debug/cachez)", size)
	}
	log.Printf("mdserver: schema %s, %d metadata attributes, listening on %s (concurrent reads, %d query workers, %s)",
		schema.Name, len(schema.Attributes), *addr, workers, caching)
	if err := http.ListenAndServe(*addr, logRequests(srv.Handler())); err != nil {
		log.Fatal("mdserver: ", err)
	}
}

func loadSchema(path string) (*xmlschema.Schema, error) {
	if path == "" {
		return xmlschema.LEAD()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".xsd") {
		return xmlschema.ParseXSD(path, string(data), "")
	}
	return xmlschema.ParseDSL(path, string(data))
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		log.Printf("%s %s", r.Method, r.URL.Path)
		next.ServeHTTP(w, r)
	})
}

// mdbench runs the reproduction experiments and prints their tables.
//
//	mdbench -list
//	mdbench -exp E3
//	mdbench -exp C1,C2 -json > results.json
//	mdbench -all [-quick]
//
// Experiment IDs and the paper claims they quantify are listed in
// DESIGN.md's per-experiment index; EXPERIMENTS.md records expected vs
// measured shapes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/gridmeta/hybridcat/internal/bench"
	"github.com/gridmeta/hybridcat/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID to run (e.g. E1, F2, A3), comma-separated for several")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment IDs")
		quick   = flag.Bool("quick", false, "shrink corpora for a fast smoke run")
		asJSON  = flag.Bool("json", false, "emit the result tables as a JSON array instead of text")
		instr   = flag.Bool("instruments", false, "attach a metrics registry to every hybrid catalog and report per-experiment counter deltas")
		results []*bench.Table
	)
	flag.Parse()

	opts := bench.Options{Quick: *quick}
	if *instr {
		opts.Metrics = obs.NewRegistry()
	}
	switch {
	case *list:
		for _, id := range bench.IDs() {
			e, _ := bench.Lookup(id)
			fmt.Printf("%-4s %s\n", id, e.Title)
		}
		return
	case *all:
		for _, id := range bench.IDs() {
			results = append(results, run(id, opts, *asJSON))
		}
	case *exp != "":
		for _, id := range strings.Split(*exp, ",") {
			results = append(results, run(strings.TrimSpace(id), opts, *asJSON))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "mdbench: %v\n", err)
			os.Exit(1)
		}
	}
}

func run(id string, opts bench.Options, quiet bool) *bench.Table {
	tab, err := bench.Run(id, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdbench: %s: %v\n", id, err)
		os.Exit(1)
	}
	if !quiet {
		fmt.Println(tab)
		if len(tab.Instruments) > 0 {
			keys := make([]string, 0, len(tab.Instruments))
			for k := range tab.Instruments {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Println("instruments:")
			for _, k := range keys {
				fmt.Printf("  %-60s %.0f\n", k, tab.Instruments[k])
			}
			fmt.Println()
		}
	}
	return tab
}

// mdbench runs the reproduction experiments and prints their tables.
//
//	mdbench -list
//	mdbench -exp E3
//	mdbench -all [-quick]
//
// Experiment IDs and the paper claims they quantify are listed in
// DESIGN.md's per-experiment index; EXPERIMENTS.md records expected vs
// measured shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/gridmeta/hybridcat/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID to run (e.g. E1, F2, A3)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment IDs")
		quick = flag.Bool("quick", false, "shrink corpora for a fast smoke run")
	)
	flag.Parse()

	opts := bench.Options{Quick: *quick}
	switch {
	case *list:
		for _, id := range bench.IDs() {
			e, _ := bench.Lookup(id)
			fmt.Printf("%-4s %s\n", id, e.Title)
		}
	case *all:
		for _, id := range bench.IDs() {
			run(id, opts)
		}
	case *exp != "":
		for _, id := range strings.Split(*exp, ",") {
			run(strings.TrimSpace(id), opts)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func run(id string, opts bench.Options) {
	tab, err := bench.Run(id, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdbench: %s: %v\n", id, err)
		os.Exit(1)
	}
	fmt.Println(tab)
}

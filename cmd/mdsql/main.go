// mdsql is a SQL REPL over the embedded relational engine. With -demo it
// preloads a catalog built from the synthetic workload so the hybrid
// tables (attr_data, elem_data, sub_attrs, clobs, attr_def, …) can be
// explored with plain SQL.
//
//	mdsql                # empty database
//	mdsql -demo -docs 50 # catalog tables preloaded
//	echo "SELECT COUNT(*) FROM elem_data" | mdsql -demo
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/sqlparser"
	"github.com/gridmeta/hybridcat/internal/workload"
)

func main() {
	var (
		demo = flag.Bool("demo", false, "preload the hybrid catalog tables from a synthetic corpus")
		docs = flag.Int("docs", 50, "corpus size for -demo")
	)
	flag.Parse()

	db := relstore.NewDatabase()
	if *demo {
		cfg := workload.Default()
		cfg.Docs = *docs
		g := workload.New(cfg)
		cat, err := catalog.Open(g.Schema, catalog.Options{})
		if err != nil {
			fatal(err)
		}
		if err := g.RegisterDefinitions(cat); err != nil {
			fatal(err)
		}
		for _, d := range g.Corpus() {
			if _, err := cat.Ingest("demo", d); err != nil {
				fatal(err)
			}
		}
		db = cat.DB
		fmt.Fprintf(os.Stderr, "loaded %d documents; tables: %s\n", *docs, strings.Join(db.TableNames(), ", "))
	}
	engine := sqlparser.NewEngine(db)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminalHint()
	if interactive {
		fmt.Fprint(os.Stderr, "mdsql> ")
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "--"):
		case line == ".tables":
			fmt.Println(strings.Join(db.TableNames(), "\n"))
		case strings.HasPrefix(line, ".explain "):
			desc, err := engine.Explain(strings.TrimPrefix(line, ".explain "), nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				break
			}
			fmt.Println(desc)
		case line == ".quit" || line == ".exit":
			return
		case sqlparser.IsQuery(line):
			it, err := engine.Query(line, nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				break
			}
			printRows(it)
		default:
			n, err := engine.Exec(line, nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				break
			}
			fmt.Printf("ok (%d rows affected)\n", n)
		}
		if interactive {
			fmt.Fprint(os.Stderr, "mdsql> ")
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func printRows(it relstore.Iterator) {
	cols := it.Columns()
	fmt.Println(strings.Join(cols, " | "))
	n := 0
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.AsString()
			if v.IsNull() {
				parts[i] = "NULL"
			}
		}
		fmt.Println(strings.Join(parts, " | "))
		n++
	}
	fmt.Printf("(%d rows)\n", n)
}

// isTerminalHint avoids prompting when stdin is clearly piped.
func isTerminalHint() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdsql:", err)
	os.Exit(1)
}

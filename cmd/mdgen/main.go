// mdgen generates the synthetic LEAD-profile corpus used by the
// experiments, writing one XML document per file (or a single document to
// stdout).
//
//	mdgen -docs 100 -out /tmp/corpus
//	mdgen -doc 7              # print document 7 to stdout
//	mdgen -defs               # print the dynamic definitions as JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/workload"
)

func main() {
	var (
		docs  = flag.Int("docs", 10, "number of documents to generate")
		out   = flag.String("out", "", "output directory (one file per document)")
		one   = flag.Int("doc", -1, "print a single document to stdout")
		defs  = flag.Bool("defs", false, "print the corpus's dynamic definitions")
		seed  = flag.Int64("seed", 42, "generator seed")
		dyn   = flag.Int("dynamic", 3, "dynamic attribute groups per document")
		depth = flag.Int("depth", 1, "sub-attribute nesting depth")
	)
	flag.Parse()

	cfg := workload.Default()
	cfg.Seed = *seed
	cfg.Docs = *docs
	cfg.DynamicAttrsPerDoc = *dyn
	cfg.NestDepth = *depth
	g := workload.New(cfg)

	switch {
	case *defs:
		cat, err := newCatalog(g)
		if err != nil {
			fatal(err)
		}
		data, err := cat.DumpDefinitionsJSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	case *one >= 0:
		if err := g.Document(*one).WriteTo(os.Stdout, 2); err != nil {
			fatal(err)
		}
	case *out != "":
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for i := 0; i < cfg.Docs; i++ {
			path := filepath.Join(*out, fmt.Sprintf("doc-%06d.xml", i))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := g.Document(i).WriteTo(f, 2); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d documents to %s\n", cfg.Docs, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func newCatalog(g *workload.Generator) (*catalog.Catalog, error) {
	cat, err := catalog.Open(g.Schema, catalog.Options{})
	if err != nil {
		return nil, err
	}
	if err := g.RegisterDefinitions(cat); err != nil {
		return nil, err
	}
	return cat, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdgen:", err)
	os.Exit(1)
}

// mdcat is the metadata catalog CLI: it builds a catalog over the LEAD
// schema (or a schema DSL file), loads definitions and documents, and
// answers attribute queries — one process per invocation, so it is a
// demonstration and inspection tool rather than a daemon (use mdserver
// for a long-running catalog).
//
//	mdcat schema                          print the Figure 2 ordering table
//	mdcat demo                            run the paper's Figure 1/3/4 example
//	mdcat ingest -defs defs.json a.xml …  shred documents, report row counts
//	mdcat query -defs defs.json -q query.json a.xml …
//
// The -schema flag loads an annotated schema DSL file instead of LEAD;
// -defs loads dynamic definitions in mdgen -defs JSON format.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/core"
	"github.com/gridmeta/hybridcat/internal/relstore"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	schemaPath := fs.String("schema", "", "annotated schema DSL file (default: built-in LEAD)")
	defsPath := fs.String("defs", "", "dynamic definitions JSON (mdgen -defs format)")
	queryPath := fs.String("q", "", "query JSON file (query command)")
	explain := fs.Bool("explain", false, "print the Figure-4 pipeline trace instead of responses")
	owner := fs.String("owner", "cli", "owner for ingests and queries")
	_ = fs.Parse(os.Args[2:])

	schema, err := loadSchema(*schemaPath)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "schema":
		for _, row := range schema.OrderingTable() {
			fmt.Println(row)
		}
	case "demo":
		if err := demo(); err != nil {
			fatal(err)
		}
	case "ingest", "query":
		cat, err := catalog.Open(schema, catalog.Options{})
		if err != nil {
			fatal(err)
		}
		if *defsPath != "" {
			if err := loadDefs(cat, *defsPath); err != nil {
				fatal(err)
			}
		}
		for _, path := range fs.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			id, err := cat.IngestXML(*owner, string(data))
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			fmt.Printf("ingested %s as object %d\n", path, id)
		}
		if cmd == "ingest" {
			for _, tbl := range []string{catalog.TObjects, catalog.TClobs, catalog.TAttrData, catalog.TElemData, catalog.TSubAttrs} {
				fmt.Printf("%-10s %6d rows\n", tbl, cat.DB.MustTable(tbl).Len())
			}
			return
		}
		if *queryPath == "" {
			fatal(fmt.Errorf("query requires -q query.json"))
		}
		qdata, err := os.ReadFile(*queryPath)
		if err != nil {
			fatal(err)
		}
		q, err := catalog.ParseQueryJSON(qdata)
		if err != nil {
			fatal(err)
		}
		if q.Owner == "" {
			q.Owner = *owner
		}
		if *explain {
			lines, err := cat.ExplainQuery(q)
			if err != nil {
				fatal(err)
			}
			for _, l := range lines {
				fmt.Println(l)
			}
			return
		}
		resp, err := cat.Search(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d objects match\n", len(resp))
		for _, r := range resp {
			doc, err := xmldoc.ParseString(r.XML)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("--- object %d ---\n%s", r.ObjectID, doc.Pretty())
		}
	default:
		usage()
	}
}

func loadSchema(path string) (*xmlschema.Schema, error) {
	if path == "" {
		return xmlschema.LEAD()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".xsd") {
		return xmlschema.ParseXSD(path, string(data), "")
	}
	return xmlschema.ParseDSL(path, string(data))
}

// loadDefs registers dynamic definitions from mdgen -defs JSON.
func loadDefs(cat *catalog.Catalog, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return cat.LoadDefinitionsJSON(data)
}

// demo runs the paper's worked example end to end.
func demo() error {
	cat, err := catalog.Open(xmlschema.MustLEAD(), catalog.Options{})
	if err != nil {
		return err
	}
	grid, err := cat.RegisterAttr("grid", "ARPS", 0, "")
	if err != nil {
		return err
	}
	for _, e := range []string{"dx", "dz"} {
		if _, err := cat.RegisterElem(e, "ARPS", grid.ID, core.DTFloat, ""); err != nil {
			return err
		}
	}
	gs, err := cat.RegisterAttr("grid-stretching", "ARPS", grid.ID, "")
	if err != nil {
		return err
	}
	for _, e := range []string{"dzmin", "reference-height"} {
		if _, err := cat.RegisterElem(e, "ARPS", gs.ID, core.DTFloat, ""); err != nil {
			return err
		}
	}
	id, err := cat.IngestXML("scientist", xmlschema.Figure3Document)
	if err != nil {
		return err
	}
	fmt.Printf("ingested the Figure 3 document as object %d\n\n", id)

	q := &catalog.Query{}
	g := q.Attr("grid", "ARPS")
	g.AddElem("dx", "ARPS", relstore.OpEq, relstore.Int(1000))
	st := &catalog.AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
	st.AddElem("dzmin", "ARPS", relstore.OpEq, relstore.Int(100))
	g.AddSub(st)
	jq, _ := catalog.MarshalQueryJSON(q)
	fmt.Printf("the paper's §4 worked query:\n%s\n\n", jq)

	resp, err := cat.Search(q)
	if err != nil {
		return err
	}
	fmt.Printf("%d object(s) match; reconstructed response:\n\n", len(resp))
	for _, r := range resp {
		doc, err := xmldoc.ParseString(r.XML)
		if err != nil {
			return err
		}
		fmt.Print(doc.Pretty())
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mdcat <command> [flags] [files]

commands:
  schema   print the schema partitioning and global ordering (Figure 2)
  demo     run the paper's Figure 1/3/4 worked example
  ingest   shred documents into a catalog and report row counts
  query    ingest documents, run a JSON query (-q), print responses
`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdcat:", err)
	os.Exit(1)
}

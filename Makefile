# Development targets. Everything is stdlib Go; no external tools needed.

GO ?= go

.PHONY: all build vet test race stress crash mvcc bitmap replica shard search cover bench experiments quick-experiments examples docs clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Long-running reader/writer stress under the race detector. STRESS
# scales the per-goroutine operation count (default in-test is 32).
STRESS ?= 200
stress:
	HYBRIDCAT_STRESS=$(STRESS) $(GO) test -race -run 'Concurrent|OracleStress' -count=1 ./internal/catalog/ ./internal/relstore/ ./internal/core/ ./internal/service/

# Crash matrix + fault-injection suites under the race detector: kill
# the durable catalog at every injected fault point and require recovery
# to match the acked-operations oracle (DESIGN.md "Durability and
# recovery").
crash:
	$(GO) test -race -run 'Crash|Fault' -count=1 ./...

# MVCC verification: the snapshot-isolation oracle suite and the
# swap-point crash matrix under the race detector, the fuzz targets'
# seed corpora, and a one-repetition smoke of the MV1 contention
# experiment (DESIGN.md "MVCC snapshots and the lock-free read path").
mvcc:
	$(GO) test -race -run 'SnapshotIsolation|CrashMatrixSwapPoints' -count=1 ./internal/relstore/ ./internal/catalog/
	$(GO) test -race -run 'Fuzz' -count=1 ./internal/catalog/ ./internal/baseline/
	$(GO) run ./cmd/mdbench -exp MV1 -quick

# Bitmap posting-list verification: the bitset fuzz target's seed
# corpus against the map-of-ints oracle, the operator/ablation matrix
# and the workload equivalence suite comparing the bitmap pipeline to
# the row-at-a-time path under the race detector, and a one-repetition
# smoke of the B1 set-operations experiment (DESIGN.md "Posting lists
# and vectorized set operations").
bitmap:
	$(GO) test -race -run 'Fuzz|Bitset|Set' -count=1 ./internal/bitset/
	$(GO) test -race -run 'Bitmap|Postings|ParallelSequentialOracleEquivalence' -count=1 ./internal/catalog/ ./internal/relstore/
	$(GO) run ./cmd/mdbench -exp B1 -quick

# Replication fault suite under the race detector: the WAL-stream
# tailer driven through scripted network faults (torn responses at
# every record offset, refused connections, primary restarts,
# checkpoint-truncated logs), the group-commit crash matrices with
# their batch-boundary windows, the retry/backoff determinism tests,
# and a one-repetition smoke of the R2 group-commit/replica-lag
# experiment (DESIGN.md "Replication").
replica:
	$(GO) test -race -run 'Replica|GroupCommit|GroupCrash|Retry|Backoff|Do|Flaky|WALStream|WALSnapshot|Healthz|Staleness' -count=1 ./internal/replica/ ./internal/retry/ ./internal/faultio/ ./internal/wal/ ./internal/catalog/ ./internal/service/
	$(GO) run ./cmd/mdbench -exp R2 -quick

# Sharding verification under the race detector: the shard-vs-single
# equivalence oracle (identical Figure-4 results and paging boundaries
# across topologies), the rebalance crash matrix bracketing the
# routing-table flip, the live-rebalance and concurrency suites, the
# sharded wire surface, and a one-repetition smoke of the S1 scaling
# experiment (DESIGN.md "Sharding").
shard:
	$(GO) test -race -run 'Shard|Rebalance' -count=1 ./internal/shard/ ./internal/service/
	$(GO) run ./cmd/mdbench -exp S1 -quick

# Ranked-retrieval verification under the race detector: the tokenizer
# fuzz target's seed corpus and the BM25 top-k brute-force property
# test, the ranked equivalence suites (planner strategies vs the DOM
# oracle, 1-shard and 4-shard clusters vs a single catalog under
# globally merged statistics, ranked paging over the wire), the
# epoch-rebuild and concurrent reader/writer tests, and a one-repetition
# smoke of the IR1 experiment (DESIGN.md "Ranked retrieval").
search:
	$(GO) test -race -run 'Fuzz|TopK|Token|Stats' -count=1 ./internal/textindex/
	$(GO) test -race -run 'Ranked|QueryLog' -count=1 ./internal/catalog/ ./internal/shard/ ./internal/service/ ./internal/workload/
	$(GO) run ./cmd/mdbench -exp IR1 -quick

cover:
	$(GO) test -cover ./...

# Documentation hygiene: go vet plus a doc-comment lint over the swept
# packages — every exported declaration there must carry a godoc
# comment (scripts/doclint.sh).
docs: vet
	sh scripts/doclint.sh internal/cache/*.go internal/wal/*.go internal/faultio/*.go internal/obs/*.go internal/shard/*.go internal/replica/*.go internal/retry/*.go internal/textindex/*.go internal/catalog/plan.go internal/catalog/exec.go internal/catalog/rank.go hybridcat.go

# One testing.B benchmark per experiment (see DESIGN.md).
bench:
	$(GO) test -bench=. -benchmem ./...

# Printable tables for every figure reproduction and claim experiment.
experiments:
	$(GO) run ./cmd/mdbench -all

quick-experiments:
	$(GO) run ./cmd/mdbench -all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/forecast
	$(GO) run ./examples/geospatial
	$(GO) run ./examples/curation
	$(GO) run ./examples/service

clean:
	$(GO) clean ./...

// Benchmarks — one per experiment in DESIGN.md's per-experiment index.
// Each benchmark times the experiment's core operation per iteration;
// the printable sweep tables come from `go run ./cmd/mdbench` (same code
// via internal/bench).
package hybridcat_test

import (
	"bytes"
	"database/sql"
	"fmt"
	"testing"

	"github.com/gridmeta/hybridcat"
	"github.com/gridmeta/hybridcat/internal/baseline"
	"github.com/gridmeta/hybridcat/internal/bench"
	"github.com/gridmeta/hybridcat/internal/catalog"
	"github.com/gridmeta/hybridcat/internal/sqldriver"
	"github.com/gridmeta/hybridcat/internal/workload"
	"github.com/gridmeta/hybridcat/internal/xmldoc"
	"github.com/gridmeta/hybridcat/internal/xmlschema"
)

// fig3Catalog builds the Figure 3 catalog for figure benchmarks.
func fig3Catalog(b *testing.B) *hybridcat.Catalog {
	b.Helper()
	c, err := hybridcat.OpenLEAD(hybridcat.Options{})
	if err != nil {
		b.Fatal(err)
	}
	grid, err := c.RegisterAttr("grid", "ARPS", 0, "")
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range []string{"dx", "dz"} {
		if _, err := c.RegisterElem(e, "ARPS", grid.ID, hybridcat.DTFloat, ""); err != nil {
			b.Fatal(err)
		}
	}
	gs, err := c.RegisterAttr("grid-stretching", "ARPS", grid.ID, "")
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range []string{"dzmin", "reference-height"} {
		if _, err := c.RegisterElem(e, "ARPS", gs.ID, hybridcat.DTFloat, ""); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// loaded builds a store of the given kind filled with a default corpus.
func loaded(b *testing.B, kind bench.StoreKind, mutate func(*workload.Config)) (baseline.Store, *workload.Generator) {
	b.Helper()
	cfg := workload.Default()
	cfg.Docs = 300
	if mutate != nil {
		mutate(&cfg)
	}
	g := workload.New(cfg)
	st, err := bench.NewStore(kind, g, bench.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range g.Corpus() {
		if _, err := st.Ingest("bench", d); err != nil {
			b.Fatal(err)
		}
	}
	return st, g
}

// --- Figures ---

// BenchmarkF1RoundTrip times the full Figure 1 pipeline: ingest + query +
// response build of the Figure 3 document.
func BenchmarkF1RoundTrip(b *testing.B) {
	q := &hybridcat.Query{}
	q.Attr("grid", "ARPS").AddElem("dx", "ARPS", hybridcat.OpEq, hybridcat.Int(1000))
	for i := 0; i < b.N; i++ {
		c := fig3Catalog(b)
		if _, err := c.IngestXML("s", hybridcat.Figure3Document); err != nil {
			b.Fatal(err)
		}
		resp, err := c.Search(q)
		if err != nil || len(resp) != 1 {
			b.Fatalf("%v %d", err, len(resp))
		}
	}
}

// BenchmarkF2SchemaOrdering times schema finalization (partition
// validation + global ordering + ancestor inverted list).
func BenchmarkF2SchemaOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := xmlschema.LEAD(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF3Shred times hybrid shredding of the Figure 3 document.
func BenchmarkF3Shred(b *testing.B) {
	c := fig3Catalog(b)
	doc, err := hybridcat.ParseXML(hybridcat.Figure3Document)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Ingest("s", doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF4QueryPipeline times the paper's §4 worked query through the
// Figure 4 set-based pipeline.
func BenchmarkF4QueryPipeline(b *testing.B) {
	c := fig3Catalog(b)
	if _, err := c.IngestXML("s", hybridcat.Figure3Document); err != nil {
		b.Fatal(err)
	}
	q := &hybridcat.Query{}
	g := q.Attr("grid", "ARPS")
	g.AddElem("dx", "ARPS", hybridcat.OpEq, hybridcat.Int(1000))
	st := &hybridcat.AttrCriteria{Name: "grid-stretching", Source: "ARPS"}
	st.AddElem("dzmin", "ARPS", hybridcat.OpEq, hybridcat.Int(100))
	g.AddSub(st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, err := c.Evaluate(q)
		if err != nil || len(ids) != 1 {
			b.Fatalf("%v %v", err, ids)
		}
	}
}

// --- E1: relational vs native XML throughput ---

func benchPointQuery(b *testing.B, kind bench.StoreKind) {
	st, g := loaded(b, kind, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Evaluate(g.PointQuery(i, i, i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1ThroughputHybrid(b *testing.B)    { benchPointQuery(b, bench.KindHybrid) }
func BenchmarkE1ThroughputNativeXML(b *testing.B) { benchPointQuery(b, bench.KindNativeXML) }

func benchIngest(b *testing.B, kind bench.StoreKind) {
	cfg := workload.Default()
	g := workload.New(cfg)
	docs := make([]*xmldoc.Node, 64)
	for i := range docs {
		docs[i] = g.Document(i)
	}
	st, err := bench.NewStore(kind, g, bench.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Ingest("bench", docs[i%len(docs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1IngestHybrid(b *testing.B)    { benchIngest(b, bench.KindHybrid) }
func BenchmarkE1IngestNativeXML(b *testing.B) { benchIngest(b, bench.KindNativeXML) }

// --- E2: query latency across stores ---

func BenchmarkE2QueryScale(b *testing.B) {
	for _, kind := range bench.AllKinds {
		b.Run(string(kind), func(b *testing.B) { benchPointQuery(b, kind) })
	}
}

// --- E3: nesting depth ---

func BenchmarkE3NestingDepth(b *testing.B) {
	deep := func(cfg *workload.Config) {
		cfg.NestDepth = 4
		cfg.ParamsPerAttr = 10
		cfg.Docs = 200
	}
	for _, kind := range []bench.StoreKind{bench.KindHybrid, bench.KindEdge, bench.KindInlining} {
		st, g := loaded(b, kind, deep)
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := st.Evaluate(g.NestedQuery(i, i, 4)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E4: response construction ---

func BenchmarkE4ResponseBuild(b *testing.B) {
	ids := make([]int64, 20)
	for i := range ids {
		ids[i] = int64(i + 1)
	}
	for _, kind := range []bench.StoreKind{bench.KindHybrid, bench.KindInlining, bench.KindEdge} {
		st, _ := loaded(b, kind, nil)
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				resp, err := st.Fetch(ids)
				if err != nil || len(resp) != len(ids) {
					b.Fatalf("%v %d", err, len(resp))
				}
			}
		})
	}
}

// --- E5: storage (reported as bytes/doc metrics) ---

func BenchmarkE5Storage(b *testing.B) {
	for _, kind := range bench.AllKinds {
		b.Run(string(kind), func(b *testing.B) {
			var bytesPerDoc float64
			for i := 0; i < b.N; i++ {
				st, _ := loaded(b, kind, func(cfg *workload.Config) { cfg.Docs = 50 })
				bytesPerDoc = float64(st.StorageBytes()) / 50
			}
			b.ReportMetric(bytesPerDoc, "bytes/doc")
		})
	}
}

// --- E6: dynamic attribute ingest & validation ---

func BenchmarkE6DynamicIngest(b *testing.B) {
	for _, depth := range []int{0, 4} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			cfg := workload.Default()
			cfg.NestDepth = depth
			cfg.ParamsPerAttr = 10
			g := workload.New(cfg)
			c, err := hybridcat.Open(g.Schema, hybridcat.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := g.RegisterDefinitions(c); err != nil {
				b.Fatal(err)
			}
			docs := make([]*xmldoc.Node, 32)
			for i := range docs {
				docs[i] = g.Document(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Ingest("bench", docs[i%len(docs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: ordering maintenance on mid-document insert ---

func BenchmarkE7OrderingUpdateHybrid(b *testing.B) {
	cfg := workload.Default()
	cfg.Docs = 1
	cfg.ThemesPerDoc = 40
	g := workload.New(cfg)
	c, err := hybridcat.Open(g.Schema, hybridcat.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := g.RegisterDefinitions(c); err != nil {
		b.Fatal(err)
	}
	id, err := c.Ingest("bench", g.Document(0))
	if err != nil {
		b.Fatal(err)
	}
	frag, _ := hybridcat.ParseXML("<theme><themekt>CF</themekt><themekey>k</themekey></theme>")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.AddAttribute(id, "bench", frag.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A1: inverted list ablation ---

func BenchmarkA1InvertedList(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := workload.Default()
			cfg.Docs = 150
			cfg.NestDepth = 4
			cfg.ParamsPerAttr = 10
			g := workload.New(cfg)
			c, err := hybridcat.Open(g.Schema, hybridcat.Options{DisableInvertedList: disable})
			if err != nil {
				b.Fatal(err)
			}
			if err := g.RegisterDefinitions(c); err != nil {
				b.Fatal(err)
			}
			for _, d := range g.Corpus() {
				if _, err := c.Ingest("bench", d); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Evaluate(g.NestedQuery(i, i, 4)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- A2: CLOB granularity ablation ---

func BenchmarkA2ClobGranularity(b *testing.B) {
	ids := make([]int64, 20)
	for i := range ids {
		ids[i] = int64(i + 1)
	}
	for _, kind := range []bench.StoreKind{bench.KindHybrid, bench.KindClob} {
		st, _ := loaded(b, kind, nil)
		b.Run("fetch-"+string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := st.Fetch(ids); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- A3: typed columns ablation (indexed range query) ---

func BenchmarkA3TypedRangeQuery(b *testing.B) {
	st, g := loaded(b, bench.KindHybrid, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Evaluate(g.RangeQuery(i, i, 0.3)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A4: SQL layer overhead ---

// BenchmarkA4SQLOverhead compares the same point lookup through the
// engine API and through database/sql (per-call parse/plan included).
func BenchmarkA4SQLOverhead(b *testing.B) {
	st, _ := loaded(b, bench.KindHybrid, func(cfg *workload.Config) { cfg.Docs = 100 })
	cat := st.(baseline.Adapter).C
	dsn := "bench-a4-root"
	sqldriver.Register(dsn, cat.DB)
	defer sqldriver.Unregister(dsn)
	db, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	elemT := cat.DB.MustTable(catalog.TElemData)
	b.Run("engine-api", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := elemT.LookupEqual("elem_data_by_object", hybridcat.Int(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("database-sql", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := db.Query("SELECT elem_id FROM elem_data WHERE object_id = ?", int64(1))
			if err != nil {
				b.Fatal(err)
			}
			for rows.Next() {
				var id int64
				if err := rows.Scan(&id); err != nil {
					b.Fatal(err)
				}
			}
			if err := rows.Err(); err != nil {
				b.Fatal(err)
			}
			rows.Close()
		}
	})
}

// BenchmarkIngestThroughputAllStores is the cross-store ingest companion
// to E1/E2.
func BenchmarkIngestThroughputAllStores(b *testing.B) {
	for _, kind := range bench.AllKinds {
		b.Run(string(kind), func(b *testing.B) { benchIngest(b, kind) })
	}
}

// --- Extension features ---

// BenchmarkOntologyExpansion measures query widening through a term
// hierarchy plus evaluation of the expanded OneOf predicate.
func BenchmarkOntologyExpansion(b *testing.B) {
	st, _ := loaded(b, bench.KindHybrid, nil)
	ont, err := hybridcat.ParseOntology(hybridcat.CFKeywords)
	if err != nil {
		b.Fatal(err)
	}
	q := &hybridcat.Query{}
	q.Attr("theme", "").AddElem("themekey", "", hybridcat.OpEq, hybridcat.Str("precipitation"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Evaluate(hybridcat.ExpandQuery(ont, q)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotSaveLoad measures catalog persistence round trips.
func BenchmarkSnapshotSaveLoad(b *testing.B) {
	st, _ := loaded(b, bench.KindHybrid, func(cfg *workload.Config) { cfg.Docs = 100 })
	cat := st.(baseline.Adapter).C
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := cat.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := hybridcat.LoadCatalog(hybridcat.LEADSchema(), hybridcat.Options{}, &buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestBatch measures batch ingest throughput (shred workers =
// GOMAXPROCS).
func BenchmarkIngestBatch(b *testing.B) {
	cfg := workload.Default()
	g := workload.New(cfg)
	docs := make([]*xmldoc.Node, 32)
	for i := range docs {
		docs[i] = g.Document(i)
	}
	cat, err := hybridcat.Open(g.Schema, hybridcat.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := g.RegisterDefinitions(cat); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.IngestBatch("bench", docs, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(docs)), "docs/op")
}

// BenchmarkContextQuery measures containment-scoped evaluation.
func BenchmarkContextQuery(b *testing.B) {
	st, g := loaded(b, bench.KindHybrid, nil)
	cat := st.(baseline.Adapter).C
	coll, err := cat.CreateCollection("exp", "bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	for id := int64(1); id <= 150; id++ {
		if err := cat.AddToCollection(coll, id); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.EvaluateInContext(coll, g.PointQuery(i, i, i)); err != nil {
			b.Fatal(err)
		}
	}
}
